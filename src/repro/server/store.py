"""Content-addressed tree store: parse once, diff many times.

The one-shot CLI re-parses both files on every ``repro diff`` — at the
north-star scale (many diffs against few distinct documents) parsing
dominates.  The store turns the parsed artifacts into shared immutable
state: each uploaded source is parsed once, canonicalized
(:meth:`~repro.core.tree.TNode.with_canonical_uris`), flattened into a
:class:`~repro.core.arena.TreeArena`, and filed under the sha256
**tree fingerprint** (:func:`repro.robustness.tree_fingerprint` over the
canonical :class:`~repro.core.mtree.MTree` state).  Clients submit
sources once and from then on address trees by fingerprint.

Content addressing is by *tree* content, not source bytes: two sources
that parse to the same canonical tree (formatting, comments) share one
entry — uploading the reformatted file is a cache hit and diffing the
two fingerprints is the identity.  The fingerprint is exactly what the
fault-injection harness compares for byte-identical rollback, so "same
fingerprint" means "indistinguishable to every observer of the standard
semantics".

Mutation semantics mirror ``robustness/``'s transactional patching: the
store never mutates an entry in place.  :meth:`TreeStore.apply` patches
a *fresh* ``MTree`` built from the stored tree with
``patch(atomic=True, verify=True)`` — any failure rolls the scratch tree
back and leaves the store untouched — and only a verified result is
inserted, under its own (new) fingerprint.  Entries are immutable after
insert; capacity is bounded by LRU eviction.

All methods are thread-safe (the asyncio front ends call them from
executor threads).
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.core import TNode, tnode_to_mtree
from repro.observability import OBS, metrics as _metrics


class StoreError(Exception):
    """A store-level request problem (unknown fingerprint, parse failure)."""


class UnknownFingerprint(StoreError):
    def __init__(self, fingerprint: str) -> None:
        super().__init__(f"unknown tree fingerprint: {fingerprint}")
        self.fingerprint = fingerprint


class StoredTree:
    """One immutable store entry: source text + parsed canonical tree.

    ``tree`` has canonical pre-order URIs (1..size), so scripts produced
    against it are meaningful to any process that re-parses the same
    source — the same contract as the CLI's ``diff``/``apply``.  The
    arena column form is materialized lazily on first use and cached.
    """

    __slots__ = ("fingerprint", "source", "filename", "tree", "nodes", "_arena", "_lock")

    def __init__(
        self, fingerprint: str, source: Optional[str], filename: str, tree: TNode
    ) -> None:
        self.fingerprint = fingerprint
        self.source = source
        self.filename = filename
        self.tree = tree
        self.nodes = tree.size
        self._arena = None
        self._lock = threading.Lock()

    def arena(self):
        """The entry's :class:`~repro.core.arena.TreeArena` (lazy, cached)."""
        with self._lock:
            if self._arena is None:
                from repro.core.arena import TreeArena

                self._arena = TreeArena.from_tree(self.tree, strict=True)
            return self._arena

    def describe(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "filename": self.filename,
            "nodes": self.nodes,
        }


def fingerprint_tree(tree: TNode) -> str:
    """The store key of a canonical tree: sha256 over its MTree state."""
    from repro.robustness import tree_fingerprint

    return tree_fingerprint(tnode_to_mtree(tree))


class TreeStore:
    """Bounded, thread-safe, content-addressed map of parsed trees.

    Counters (under ``repro.server.store.``): ``parses`` (sources parsed
    — flat across repeated uploads and all fingerprint-addressed
    requests, the "no re-parse" evidence the smoke gate scrapes),
    ``puts`` (new entries), ``dups`` (uploads that were already
    present), ``hits``/``misses`` (fingerprint lookups), ``evictions``,
    and the ``trees`` gauge.
    """

    def __init__(self, max_trees: int = 1024) -> None:
        if max_trees < 1:
            raise ValueError(f"max_trees must be >= 1, got {max_trees}")
        self.max_trees = max_trees
        # lock-order class "store._lock": may be held while taking the
        # durable store's "store._io_lock", never acquired under it —
        # the sanitizer (repro.robustness.locksan) enforces the order
        # when enabled and hands back a plain RLock otherwise
        from repro.robustness import locksan

        self._lock = locksan.rlock("store._lock")
        #: insertion/touch order is LRU order (dicts preserve insertion).
        self._trees: dict[str, StoredTree] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._trees)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._trees

    def _count(self, name: str, n: int = 1) -> None:
        if OBS.enabled:
            _metrics().counter(f"repro.server.store.{name}").inc(n)

    def _gauge(self) -> None:
        if OBS.enabled:
            _metrics().gauge("repro.server.store.trees").set(len(self._trees))

    def put_source(self, source: str, filename: str = "<uploaded>") -> tuple[StoredTree, bool]:
        """Parse ``source`` and insert it; returns ``(entry, was_cached)``.

        Raises :class:`StoreError` for unparseable input.  An upload
        whose tree is already stored returns the existing entry
        (``was_cached=True``) — the parse it paid is the price of
        discovering the fingerprint; fingerprint-addressed requests
        never parse.
        """
        from repro.adapters.pyast import parse_python

        self._count("parses")
        try:
            try:
                tree = parse_python(source, filename).with_canonical_uris()
            except SystemError:
                # CPython's C AST constructor keeps recursion-depth
                # bookkeeping that can transiently desync when many
                # executor threads parse at once ("AST constructor
                # recursion depth mismatch").  The parse itself is
                # deterministic, so one retry settles it instead of
                # surfacing a spurious 500 to the client.
                self._count("parse_retries")
                tree = parse_python(source, filename).with_canonical_uris()
        except SyntaxError as exc:
            where = f" (line {exc.lineno})" if exc.lineno else ""
            raise StoreError(
                f"{filename}: {exc.msg or 'invalid syntax'}{where}"
            ) from None
        except ValueError as exc:  # e.g. null bytes in source
            raise StoreError(f"{filename}: {exc}") from None
        return self._insert(tree, source, filename)

    def put_tree(
        self,
        tree: TNode,
        source: Optional[str] = None,
        filename: str = "<patched>",
        fingerprint: Optional[str] = None,
    ) -> tuple[StoredTree, bool]:
        """Insert an already-parsed canonical tree (e.g. an apply result).

        Callers that already fingerprinted the tree (batch apply compares
        fingerprints before committing) pass it through to skip the
        second hash."""
        return self._insert(tree, source, filename, fingerprint=fingerprint)

    def _insert(
        self,
        tree: TNode,
        source: Optional[str],
        filename: str,
        fingerprint: Optional[str] = None,
    ) -> tuple[StoredTree, bool]:
        # callers that already fingerprinted the tree (apply staging,
        # snapshot recovery) pass it in; hashing a large tree twice is
        # the dominant avoidable cost on the write path
        fp = fingerprint if fingerprint is not None else fingerprint_tree(tree)
        with self._lock:
            existing = self._trees.get(fp)
            if existing is not None:
                self._trees[fp] = self._trees.pop(fp)  # refresh LRU position
                self._count("dups")
                return existing, True
            entry = StoredTree(fp, source, filename, tree)
            self._trees[fp] = entry
            while len(self._trees) > self.max_trees:
                evicted = next(iter(self._trees))
                del self._trees[evicted]
                self._count("evictions")
            self._count("puts")
            self._gauge()
            return entry, False

    def get(self, fingerprint: str) -> StoredTree:
        """Look an entry up by fingerprint; raises :class:`UnknownFingerprint`."""
        with self._lock:
            entry = self._trees.get(fingerprint)
            if entry is None:
                self._count("misses")
                raise UnknownFingerprint(fingerprint)
            self._trees[fingerprint] = self._trees.pop(fingerprint)
            self._count("hits")
            return entry

    def list(self) -> list[dict[str, Any]]:
        with self._lock:
            return [entry.describe() for entry in self._trees.values()]

    def apply(
        self, fingerprint: str, script, commit: bool = True
    ) -> tuple[StoredTree, bool, str]:
        """Atomically patch a stored tree; returns ``(entry, was_cached, source)``.

        The script is applied to a scratch ``MTree`` with the full
        transactional machinery (pre-flight typecheck, undo journal,
        post-verify); a rejected patch raises
        :class:`~repro.core.PatchError` with the store unchanged.  On
        success the patched tree is unparsed and — with ``commit`` —
        inserted under its own fingerprint (the store being
        content-addressed, a "mutation" is always a new entry).
        """
        base = self.get(fingerprint)
        mtree = tnode_to_mtree(base.tree)
        # PatchError propagates to the service layer; atomic => the
        # scratch tree rolled back and the store was never touched.
        mtree.patch(script, atomic=True, sigs=base.tree.sigs, verify=True)
        from repro.adapters.pyast import python_grammar, unparse_python

        g = python_grammar()
        rebuilt = g.grammar.parse_tuple(mtree.to_tuple()).with_canonical_uris()
        source = unparse_python(rebuilt)
        if not commit:
            return StoredTree(fingerprint_tree(rebuilt), source, base.filename, rebuilt), False, source
        entry, was_cached = self._insert(rebuilt, source, base.filename)
        return entry, was_cached, source
