"""Transport-independent request handling for the diff daemon.

:class:`ReproService` is the single implementation both front ends
(HTTP in :mod:`repro.server.httpd`, JSONL-over-stdio in
:mod:`repro.server.stdio`) delegate to: a table of named operations over
the content-addressed :class:`~repro.server.store.TreeStore`, each
taking and returning plain JSON-ready dicts.

Handlers are synchronous and thread-safe; the asyncio front ends run
them on executor threads.  Every request executes under a
``repro.server.request`` span opened with *no* inherited trace context,
so when tracing is enabled each request is the root of its own causal
trace (its pool-side diff spans join that trace through the obs
envelope's resample point — exactly the batch pool's propagation
protocol).  Heavy diff work goes to the worker pool when one is
configured; otherwise it runs inline under the compute lock (tree
state is shared immutable structure, but per-diff node state means at
most one in-process diff at a time).

Errors are :class:`ServiceError` values with a stable ``code`` that the
front ends map to a status (HTTP 400/404/409/503, stdio ``ok=false``):
unknown fingerprints are ``not_found``, malformed requests are
``bad_request``, rejected patches and merge conflicts are ``conflict``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Optional

from repro.core import PatchError, tnode_to_mtree
from repro.core.serialize import SerializationError, script_from_json
from repro.observability import (
    OBS,
    TelemetryCollector,
    metrics as _metrics,
    span as _span,
    take_spans,
)

from .pool import DiffPool, diff_trees
from .store import StoredTree, StoreError, TreeStore, UnknownFingerprint

#: Upper bound on scripts per ``/apply-batch`` request.
MAX_BATCH_SCRIPTS = 64

#: ServiceError codes -> HTTP status (the stdio front end ships the code).
ERROR_STATUS = {
    "bad_request": 400,
    "not_found": 404,
    "conflict": 409,
    "unavailable": 503,
    "internal": 500,
}


class ServiceError(Exception):
    """A structured request failure: stable code + one-line message."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code if code in ERROR_STATUS else "internal"
        self.message = message

    @property
    def status(self) -> int:
        return ERROR_STATUS[self.code]

    def as_dict(self) -> dict[str, Any]:
        return {"code": self.code, "message": self.message}


def _python_sigs():
    from repro.adapters.pyast import python_grammar

    return python_grammar().grammar.sigs


def _parse_script(value: Any, what: str = "script"):
    """A truechange script from a request value: raw JSON text or the
    parsed JSON value (both wire forms round-trip through the strict
    serializer)."""
    if value is None:
        raise ServiceError("bad_request", f"missing {what!r}")
    text = value if isinstance(value, str) else json.dumps(value)
    try:
        return script_from_json(text)
    except SerializationError as exc:
        raise ServiceError("bad_request", f"{what}: {exc}") from None


class ReproService:
    """The daemon's operation table; one instance per daemon."""

    def __init__(
        self,
        store: Optional[TreeStore] = None,
        workers: int = 0,
        collector: Optional[TelemetryCollector] = None,
        op_timeout_s: Optional[float] = None,
    ) -> None:
        self.store = store if store is not None else TreeStore()
        #: per-operation deadline for pooled diffs (None = no deadline)
        self.op_timeout_s = op_timeout_s if op_timeout_s and op_timeout_s > 0 else None
        self.collector = (
            collector if collector is not None else TelemetryCollector()
        )
        self.pool = DiffPool(workers, self.collector) if workers > 0 else None
        self._compute_lock = threading.Lock()
        self._started = time.time()
        self._requests = 0
        self._errors = 0
        self._sigs = None
        self._ops: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
            "put_tree": self._op_put_tree,
            "list_trees": self._op_list_trees,
            "diff": self._op_diff,
            "apply": self._op_apply,
            "apply_batch": self._op_apply_batch,
            "lint": self._op_lint,
            "verify": self._op_verify,
            "merge": self._op_merge,
            "health": self._op_health,
        }

    # ------------------------------------------------------------------
    # dispatch

    def handle(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        """Execute one operation; raises :class:`ServiceError` on failure.

        Runs under a fresh-rooted ``repro.server.request`` span (one
        trace per request) and keeps the request counters.
        """
        handler = self._ops.get(op)
        if handler is None:
            raise ServiceError("bad_request", f"unknown operation {op!r}")
        if not isinstance(params, dict):
            raise ServiceError("bad_request", "request parameters must be an object")
        self._requests += 1
        if OBS.enabled:
            _metrics().counter("repro.server.requests").inc()
            _metrics().counter(f"repro.server.requests.{op}").inc()
        with _span("repro.server.request", {"op": op}) as sp:
            try:
                return handler(params)
            except ServiceError as exc:
                sp.set_status("error", exc.code)
                self._errors += 1
                if OBS.enabled:
                    _metrics().counter("repro.server.request_errors").inc()
                raise
            except Exception as exc:
                sp.set_status("error", type(exc).__name__)
                self._errors += 1
                if OBS.enabled:
                    _metrics().counter("repro.server.request_errors").inc()
                raise ServiceError(
                    "internal",
                    f"{type(exc).__name__}: "
                    + " ".join((str(exc) or "").split()),
                ) from exc

    # ------------------------------------------------------------------
    # tree resolution

    def _resolve_tree(self, params: dict[str, Any], key: str) -> tuple[StoredTree, bool]:
        """A request tree reference: a fingerprint string (store lookup)
        or an inline ``{"source": ..., "filename": ...}`` object (parsed
        and stored on the way through).  Returns ``(entry, was_cached)``."""
        value = params.get(key)
        if isinstance(value, str):
            try:
                return self.store.get(value), True
            except UnknownFingerprint as exc:
                raise ServiceError("not_found", str(exc)) from None
        if isinstance(value, dict) and isinstance(value.get("source"), str):
            try:
                return self.store.put_source(
                    value["source"], value.get("filename") or f"<{key}>"
                )
            except StoreError as exc:
                raise ServiceError("bad_request", str(exc)) from None
        raise ServiceError(
            "bad_request",
            f"{key!r} must be a fingerprint string or {{\"source\": ...}}",
        )

    # ------------------------------------------------------------------
    # operations

    def _op_put_tree(self, params: dict[str, Any]) -> dict[str, Any]:
        source = params.get("source")
        if not isinstance(source, str):
            raise ServiceError("bad_request", "'source' must be a string")
        try:
            entry, cached = self.store.put_source(
                source, params.get("filename") or "<uploaded>"
            )
        except StoreError as exc:
            raise ServiceError("bad_request", str(exc)) from None
        return {
            "fingerprint": entry.fingerprint,
            "nodes": entry.nodes,
            "cached": cached,
        }

    def _op_list_trees(self, params: dict[str, Any]) -> dict[str, Any]:
        return {"trees": self.store.list()}

    def _op_diff(self, params: dict[str, Any]) -> dict[str, Any]:
        before, b_cached = self._resolve_tree(params, "before")
        after, a_cached = self._resolve_tree(params, "after")
        if (
            self.pool is not None
            and before.source is not None
            and after.source is not None
        ):
            result = self._pool_diff(before, after)
        else:
            with self._compute_lock:
                result = diff_trees(before.tree, after.tree)
        script_json = result.pop("script_json")
        result.pop("ok", None)
        out = {
            "before": before.fingerprint,
            "after": after.fingerprint,
            "cached": {"before": b_cached, "after": a_cached},
            "script": json.loads(script_json),
            "script_json": script_json,
        }
        out.update(result)
        return out

    def _pool_diff(self, before: StoredTree, after: StoredTree) -> dict[str, Any]:
        payload = {
            "before": {
                "fingerprint": before.fingerprint,
                "source": before.source,
                "filename": before.filename,
            },
            "after": {
                "fingerprint": after.fingerprint,
                "source": after.source,
                "filename": after.filename,
            },
        }
        result = self.pool.finish(self.pool.submit(payload), self.op_timeout_s)
        if not result.get("ok"):
            code = (
                "unavailable"
                if result.get("error_type") in ("BrokenProcessPool", "Timeout")
                else "internal"
            )
            raise ServiceError(code, result.get("error") or "diff failed")
        return result

    def _op_apply(self, params: dict[str, Any]) -> dict[str, Any]:
        fingerprint = params.get("tree")
        if not isinstance(fingerprint, str):
            raise ServiceError("bad_request", "'tree' must be a fingerprint string")
        script = _parse_script(params.get("script"))
        commit = bool(params.get("commit", True))
        with self._compute_lock:
            try:
                entry, cached, source = self.store.apply(fingerprint, script, commit)
            except UnknownFingerprint as exc:
                raise ServiceError("not_found", str(exc)) from None
            except PatchError as exc:
                # atomic semantics: the patch rolled back, the store is
                # untouched; the client gets the structured rejection
                raise ServiceError("conflict", f"patch rejected: {exc}") from None
        return {
            "tree": fingerprint,
            "fingerprint": entry.fingerprint,
            "nodes": entry.nodes,
            "cached": cached,
            "committed": commit,
            "source": source,
        }

    # ------------------------------------------------------------------
    # batch apply: truerace-scheduled concurrent application

    def _op_apply_batch(self, params: dict[str, Any]) -> dict[str, Any]:
        """Apply N scripts to one stored tree under the truerace schedule.

        The pipeline: canonically rename colliding fresh URIs
        (:func:`~repro.analysis.race.rename_fresh` — after which the
        fresh-URI interference rules are discharged), build the wave
        schedule with ``assume_renamed=True``, then execute it.  Wave 0
        (scripts independent of everything before them) fans its
        per-script transactional validation out across the worker pool;
        the daemon composes the accepted scripts — provably conflict-free
        — onto one scratch tree without re-verifying each.  Later waves
        interfere with something earlier, so they are applied
        sequentially in input order with full verification, which is
        exactly what the sequential fold would do with them.

        The result is defined to be the **sequential fold in input
        order** (each script applied transactionally; rejected scripts
        skipped).  The parallel path is an implementation of that spec:
        any pool failure or composition surprise falls back to the
        literal fold, and ``oracle=true`` re-runs the fold and asserts
        the fingerprints and per-script verdicts are identical —
        the zero-false-independence gate, servable on demand.
        """
        from repro.analysis.race import rename_fresh, schedule, script_effects

        fingerprint = params.get("tree")
        if not isinstance(fingerprint, str):
            raise ServiceError("bad_request", "'tree' must be a fingerprint string")
        raw = params.get("scripts")
        if not isinstance(raw, list) or not raw:
            raise ServiceError("bad_request", "'scripts' must be a non-empty array")
        if len(raw) > MAX_BATCH_SCRIPTS:
            raise ServiceError(
                "bad_request",
                f"at most {MAX_BATCH_SCRIPTS} scripts per batch, got {len(raw)}",
            )
        scripts = [_parse_script(v, f"scripts[{i}]") for i, v in enumerate(raw)]
        commit = bool(params.get("commit", True))
        oracle = bool(params.get("oracle", False))
        want_parallel = bool(params.get("parallel", True))
        try:
            base = self.store.get(fingerprint)
        except UnknownFingerprint as exc:
            raise ServiceError("not_found", str(exc)) from None

        renamed, renames = rename_fresh(
            scripts, set(range(1, base.nodes + 1)), start=base.nodes + 1
        )
        effects = [script_effects(s) for s in renamed]
        sch = schedule(renamed, assume_renamed=True, effects=effects)
        self._batch_count("requests")
        self._batch_count("scripts", len(scripts))
        self._batch_count("conflicts", len(sch.conflicts))
        self._batch_count("waves", len(sch.waves))
        self._batch_count("renamed_loads", renames)

        use_parallel = (
            want_parallel
            and self.pool is not None
            and base.source is not None
            and len(sch.waves[0]) > 1
        )
        with self._compute_lock:
            mode = "sequential"
            statuses: Optional[list[dict[str, Any]]] = None
            mtree = None
            if use_parallel:
                parallel_run = self._batch_parallel(base, renamed, sch)
                if parallel_run is None:
                    self._batch_count("fallbacks")
                else:
                    mode = "parallel"
                    mtree, statuses = parallel_run
            if statuses is None:
                mtree, statuses = self._batch_sequential(base, renamed)
            rebuilt, source, out_fp = self._batch_finish(mtree)

            oracle_out: Optional[dict[str, Any]] = None
            if oracle:
                self._batch_count("oracle_checks")
                if mode == "parallel":
                    seq_mtree, seq_statuses = self._batch_sequential(base, renamed)
                    _, _, seq_fp = self._batch_finish(seq_mtree)
                else:
                    seq_statuses, seq_fp = statuses, out_fp
                verdicts = [(s["index"], s["status"]) for s in statuses]
                seq_verdicts = [(s["index"], s["status"]) for s in seq_statuses]
                if out_fp != seq_fp or verdicts != seq_verdicts:
                    self._batch_count("oracle_failures")
                    raise ServiceError(
                        "internal",
                        "apply-batch differential oracle failed: parallel "
                        f"result {out_fp[:12]} (verdicts {verdicts}) != "
                        f"sequential {seq_fp[:12]} (verdicts {seq_verdicts})",
                    )
                oracle_out = {"ok": True, "fingerprint": seq_fp, "compared": mode}

            cached = False
            if commit:
                entry, cached = self.store.put_tree(
                    rebuilt, source, base.filename, fingerprint=out_fp
                )
                out_fp = entry.fingerprint

        applied = sum(1 for s in statuses if s["status"] == "applied")
        self._batch_count("applied", applied)
        self._batch_count("rejected", len(statuses) - applied)
        if mode == "parallel":
            self._batch_count("parallel_scripts", len(sch.waves[0]))
            self._batch_count(
                "serialized_scripts", len(statuses) - len(sch.waves[0])
            )
        out = {
            "tree": fingerprint,
            "fingerprint": out_fp,
            "nodes": rebuilt.size,
            "cached": cached,
            "committed": commit,
            "source": source,
            "mode": mode,
            "applied": applied,
            "rejected": len(statuses) - applied,
            "renamed_loads": renames,
            "scripts": statuses,
            "schedule": sch.as_dict(),
        }
        if oracle_out is not None:
            out["oracle"] = oracle_out
        return out

    def _batch_count(self, name: str, n: int = 1) -> None:
        if OBS.enabled and n:
            _metrics().counter(f"repro.server.batch_apply.{name}").inc(n)

    @staticmethod
    def _status_applied(index: int, script) -> dict[str, Any]:
        return {"index": index, "status": "applied", "edits": len(script)}

    @staticmethod
    def _status_rejected(index: int, error_type: str, error: str) -> dict[str, Any]:
        return {
            "index": index,
            "status": "rejected",
            "error": f"{error_type}: {error}",
        }

    def _batch_sequential(self, base: StoredTree, renamed) -> tuple[Any, list[dict[str, Any]]]:
        """The spec: fold the scripts over the base in input order, each
        with the full transactional machinery; rejections skip."""
        mtree = tnode_to_mtree(base.tree)
        sigs = base.tree.sigs
        statuses: list[dict[str, Any]] = []
        for i, script in enumerate(renamed):
            try:
                mtree.patch(script, atomic=True, sigs=sigs, verify=True)
            except PatchError as exc:
                statuses.append(
                    self._status_rejected(
                        i, type(exc).__name__, " ".join(str(exc).split())
                    )
                )
            else:
                statuses.append(self._status_applied(i, script))
        return mtree, statuses

    def _batch_parallel(
        self, base: StoredTree, renamed, sch
    ) -> Optional[tuple[Any, list[dict[str, Any]]]]:
        """Wave-0 fan-out plus driver composition; later waves inline.

        Returns ``None`` when the pool failed mid-batch or the
        composition contradicted the analysis — the caller re-runs the
        sequential fold, so clients always get the spec's answer.
        """
        from repro.core.serialize import script_to_json

        from .pool import pool_apply_task

        wave0 = sch.waves[0]
        base_spec = {
            "fingerprint": base.fingerprint,
            "source": base.source,
            "filename": base.filename,
        }
        futures = [
            (
                i,
                self.pool.submit(
                    {
                        "base": base_spec,
                        "script_json": script_to_json(renamed[i]),
                        "index": i,
                    },
                    task=pool_apply_task,
                ),
            )
            for i in wave0
        ]
        verdicts: dict[int, dict[str, Any]] = {}
        pool_ok = True
        for i, fut in futures:
            res = self.pool.finish(fut, self.op_timeout_s)
            if not res.get("ok"):
                pool_ok = False  # keep draining; finish() already rebuilt
            else:
                verdicts[i] = res
        if not pool_ok:
            return None

        # every index sits in exactly one wave, so every slot is filled
        statuses: list[dict[str, Any]] = [{} for _ in renamed]
        mtree = tnode_to_mtree(base.tree)
        sigs = base.tree.sigs
        for i in wave0:
            res = verdicts[i]
            if not res.get("applied"):
                statuses[i] = self._status_rejected(
                    i, res.get("error_type", "PatchError"), res.get("error", "")
                )
                continue
            try:
                # the worker verified this script against the base, and
                # wave-0 scripts are pairwise independent: composing the
                # accepted ones cannot interfere, so the driver skips the
                # per-script O(n) verify — that's the parallelism win
                mtree.patch(renamed[i], atomic=True, sigs=sigs, verify=False)
            except PatchError:
                # the analysis called these independent and the composition
                # still failed — a conservatism bug must degrade to the
                # sequential fold, never to a wrong answer
                return None
            statuses[i] = self._status_applied(i, renamed[i])
        for wave in sch.waves[1:]:
            for i in wave:
                try:
                    mtree.patch(renamed[i], atomic=True, sigs=sigs, verify=True)
                except PatchError as exc:
                    statuses[i] = self._status_rejected(
                        i, type(exc).__name__, " ".join(str(exc).split())
                    )
                else:
                    statuses[i] = self._status_applied(i, renamed[i])
        return mtree, statuses

    @staticmethod
    def _batch_finish(mtree) -> tuple[Any, str, str]:
        """Rebuild the canonical tree from the patched scratch ``MTree``
        exactly as :meth:`TreeStore.apply` does; returns
        ``(tree, source, fingerprint)``."""
        from repro.adapters.pyast import python_grammar, unparse_python

        from .store import fingerprint_tree

        g = python_grammar()
        rebuilt = g.grammar.parse_tuple(mtree.to_tuple()).with_canonical_uris()
        source = unparse_python(rebuilt)
        return rebuilt, source, fingerprint_tree(rebuilt)

    def _op_lint(self, params: dict[str, Any]) -> dict[str, Any]:
        from repro.analysis import lint_script, render_json

        script = _parse_script(params.get("script"))
        if self._sigs is None:
            self._sigs = _python_sigs()
        report = lint_script(script, self._sigs)
        return json.loads(render_json(report))

    def _op_verify(self, params: dict[str, Any]) -> dict[str, Any]:
        from repro.robustness import check_tree

        entry, _ = self._resolve_tree(params, "tree")
        with self._compute_lock:
            violations = check_tree(tnode_to_mtree(entry.tree), entry.tree.sigs)
        return {
            "fingerprint": entry.fingerprint,
            "nodes": entry.nodes,
            "ok": not violations,
            "violations": [str(v) for v in violations],
        }

    def _op_merge(self, params: dict[str, Any]) -> dict[str, Any]:
        from repro.core import merge_scripts
        from repro.core.serialize import script_to_json

        left = _parse_script(params.get("left"), "left")
        right = _parse_script(params.get("right"), "right")
        result = merge_scripts(left, right)
        if not result.ok:
            return {
                "ok": False,
                "conflicts": [str(c) for c in result.conflicts],
            }
        merged = script_to_json(result.script, indent=2)
        return {
            "ok": True,
            "conflicts": [],
            "edits": len(result.script),
            "script": json.loads(merged),
            "script_json": merged,
        }

    def _op_health(self, params: dict[str, Any]) -> dict[str, Any]:
        out = {
            "status": "ok",
            "uptime_s": round(time.time() - self._started, 3),
            "trees": len(self.store),
            "requests": self._requests,
            "errors": self._errors,
            "workers": self.pool.workers if self.pool is not None else 0,
        }
        describe = getattr(self.store, "describe_recovery", None)
        if describe is not None:  # durable store: surface what the open found
            out["recovery"] = describe()
        return out

    # ------------------------------------------------------------------
    # observability surfaces

    def metrics_text(self) -> str:
        """The Prometheus exposition the ``/metrics`` endpoint serves —
        the daemon registry with all absorbed worker deltas merged in."""
        from repro.observability import prometheus_text, snapshot

        if OBS.enabled:
            # gauges merge last-write-wins across worker deltas; re-assert
            # the authoritative store size at scrape time
            _metrics().gauge("repro.server.store.trees").set(len(self.store))
        return prometheus_text(snapshot())

    def drain_spans(self) -> list[dict[str, Any]]:
        """All span records collected since the last drain: the daemon's
        own trace buffer plus everything workers shipped back."""
        spans = list(self.collector.spans)
        self.collector.spans = []
        spans.extend(take_spans())
        return spans

    def close(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=True)
        close_store = getattr(self.store, "close", None)
        if close_store is not None:  # durable store: journal fh + dir lock
            close_store()
