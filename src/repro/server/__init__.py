"""Diff-as-a-service: a long-lived daemon over a content-addressed tree store.

The library → system step the ROADMAP names: instead of one-shot CLI
invocations that re-parse everything, a persistent asyncio daemon holds
parsed trees in a :class:`~repro.server.store.TreeStore` keyed by the
sha256 tree fingerprint, and serves ``diff`` / ``apply`` / ``lint`` /
``verify`` / ``merge`` requests against the cached trees — clients
submit sources once, then address them by fingerprint.

* :mod:`repro.server.store` — the content-addressed store (parse once,
  LRU-bounded, atomic-patch mutation semantics);
* :mod:`repro.server.pool` — worker-process pool for heavy diffs,
  reusing the batch layer's obs-envelope + telemetry-delta machinery;
* :mod:`repro.server.service` — the transport-independent operation
  table (one ``repro.server.request`` trace per request);
* :mod:`repro.server.httpd` / :mod:`repro.server.stdio` — the HTTP and
  JSONL-over-stdio front ends, both with graceful drain-on-shutdown;
* :mod:`repro.server.client` — a stdlib blocking client (the CLI's
  ``--server`` mode and the CI smoke gate);
* :mod:`repro.server.durable` — the crash-safe store behind
  ``--data-dir``: content-addressed snapshots plus a CRC-framed,
  fsync'd write-ahead journal of applied scripts, with verified
  replay-based recovery on startup;
* :mod:`repro.server.smoke` — the end-to-end differential gate
  (``python -m repro.server.smoke``): server output byte-identical to
  the one-shot CLI, cache hits visible in ``/metrics``, ≥ 32 concurrent
  requests, graceful shutdown drain;
* :mod:`repro.server.chaos` — the seeded daemon chaos campaign
  (``python -m repro.server.chaos``): kill -9 mid-apply, torn/flipped
  journal bytes, wedged workers, slow-loris clients, overload — each
  scenario asserting recovery to a verified store and byte-identical
  diff answers.

Start one with ``python -m repro serve`` (see the CLI docs).
"""

from .client import ClientError, ServerClient
from .durable import (
    DataDirLocked,
    DurableTreeStore,
    RecoveryStats,
    frame_record,
    read_segment,
)
from .httpd import ReproHTTPServer, run_http_daemon
from .pool import DiffPool, diff_trees, pool_diff_task
from .service import ERROR_STATUS, ReproService, ServiceError
from .stdio import ReproStdioServer, run_stdio_daemon
from .store import (
    StoredTree,
    StoreError,
    TreeStore,
    UnknownFingerprint,
    fingerprint_tree,
)

__all__ = [
    "ClientError",
    "DataDirLocked",
    "DiffPool",
    "DurableTreeStore",
    "ERROR_STATUS",
    "RecoveryStats",
    "ReproHTTPServer",
    "ReproService",
    "ReproStdioServer",
    "ServerClient",
    "ServiceError",
    "StoreError",
    "StoredTree",
    "TreeStore",
    "UnknownFingerprint",
    "diff_trees",
    "fingerprint_tree",
    "frame_record",
    "pool_diff_task",
    "read_segment",
    "run_http_daemon",
    "run_stdio_daemon",
]
