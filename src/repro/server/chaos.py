"""Seeded process-level chaos campaign for the diff daemon (the CI
``server-chaos`` job; runnable locally as ``python -m repro.server.chaos``).

The fault-injection harness (:mod:`repro.robustness.harness`) attacks
scripts and trees inside one process; this campaign attacks the *daemon*
the way production does — with signals, torn disks, dead workers, stalled
sockets, and too much traffic:

* ``restart_identity`` — populate a durable store (uploads + a journaled
  apply), SIGKILL the daemon, restart from the same ``--data-dir``:
  the tree set, every ``verify``, and every frozen diff answer must be
  byte-identical to pre-crash (and to one-shot ``repro diff --json``);
* ``kill9_mid_apply`` — SIGKILL mid-apply-stream: every apply the
  daemon *acknowledged* must survive the restart (the fsync-before-ack
  contract), unacknowledged ones may simply not exist;
* ``torn_tail`` — :func:`~repro.robustness.truncate_tail` the active
  journal segment: recovery skips-and-counts the torn record, keeps
  everything before it, and the daemon serves;
* ``flip_byte`` — :func:`~repro.robustness.flip_byte` one journal byte:
  recovery reports the damage (CRC/fingerprint) and never goes down;
* ``worker_kill`` — SIGKILL a pool worker with ≥ 12 requests in flight:
  every request gets correct bytes or a structured ``unavailable``,
  never a hang, and the rebuilt pool serves the next request;
* ``slow_loris`` — stalled half-sent requests must time out (408) while
  concurrent well-behaved requests keep being served;
* ``overload_shed`` — with ``--max-inflight 1``, a 12-way burst yields
  at least one 503 + ``Retry-After`` and at least one success, and a
  backoff-retrying client gets through;
* ``overhead`` — the durable store's write path (same put/apply mix the
  smoke gate drives) is timed against the in-memory store and gated at
  ``--max-overhead-pct`` (default 25%).

Everything is derived from ``--seed``; one JSON row per scenario goes to
``--out``.  Exit status: 0 all scenarios recovered, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Optional
from urllib.parse import urlsplit

from repro.robustness import flip_byte, truncate_tail

from .client import ClientError, ServerClient
from .smoke import LISTENING, cli_diff_json, metric_value


# ---------------------------------------------------------------------------
# daemon + corpus plumbing


class Daemon:
    """One ``python -m repro serve`` subprocess with its stderr drained."""

    def __init__(
        self,
        *extra: str,
        data_dir: Optional[Path] = None,
        startup_timeout: float = 30.0,
    ) -> None:
        argv = [sys.executable, "-m", "repro", "serve", "--port", "0", *extra]
        if data_dir is not None:
            argv += ["--data-dir", str(data_dir)]
        # own session => killpg can take out pool workers too, exactly
        # like an operator's `kill -9 -<pgid>` (workers also self-exit
        # via the pool's parent-death watchdog, but a chaos scenario
        # should not have to wait out its poll interval)
        self.proc = subprocess.Popen(
            argv, stderr=subprocess.PIPE, text=True, start_new_session=True
        )
        self.stderr_lines: list[str] = []
        self.base_url: Optional[str] = None
        self._ready = threading.Event()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()
        if not self._ready.wait(startup_timeout) or self.base_url is None:
            self.proc.kill()
            self.proc.wait()
            raise RuntimeError(
                "daemon never reported a listening address; stderr: "
                + "".join(self.stderr_lines[-5:])
            )

    def _drain(self) -> None:
        assert self.proc.stderr is not None
        for line in self.proc.stderr:
            self.stderr_lines.append(line)
            if self.base_url is None:
                match = LISTENING.search(line)
                if match:
                    self.base_url = match.group(1)
                    self._ready.set()
        self._ready.set()

    def client(self, **kwargs: Any) -> ServerClient:
        assert self.base_url is not None
        return ServerClient(self.base_url, **kwargs)

    def sigkill(self) -> None:
        """SIGKILL the daemon *and* its pool workers: no drain, no
        atexit, no flush — and no orphan still holding the data-dir
        flock when the next daemon starts."""
        self._killpg()
        self.proc.wait()

    def _killpg(self) -> None:
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (OSError, AttributeError):
            self.proc.kill()

    def stop(self) -> None:
        if self.proc.poll() is None:
            try:
                self.client(retries=0, timeout_s=10).shutdown()
                self.proc.wait(timeout=30)
            except (ClientError, subprocess.TimeoutExpired, OSError):
                self._killpg()
                self.proc.wait()


def worker_pids(daemon_pid: int) -> list[int]:
    """The daemon's direct children (its ProcessPoolExecutor workers),
    via /proc; empty where /proc is unavailable."""
    pids: set[int] = set()
    try:
        # /proc/<pid>/task/*/children needs CONFIG_PROC_CHILDREN ...
        for children in Path(f"/proc/{daemon_pid}/task").glob("*/children"):
            pids.update(int(p) for p in children.read_text().split())
    except OSError:
        pass
    if pids:
        return sorted(pids)
    # ... so fall back to scanning every /proc/<pid>/stat for the ppid
    # (field 4, after the parenthesised comm which may contain spaces)
    try:
        for entry in Path("/proc").iterdir():
            if not entry.name.isdigit():
                continue
            try:
                stat = (entry / "stat").read_text()
                ppid = int(stat.rpartition(")")[2].split()[1])
            except (OSError, ValueError, IndexError):
                continue
            if ppid == daemon_pid:
                pids.add(int(entry.name))
    except OSError:
        return []
    return sorted(pids)


def corpus_docs(seed: int, n: int, *, big: bool = False) -> list[tuple[str, str]]:
    """Reproducible (before, after) source pairs from the synthetic
    Python corpus (same derivation style as the robustness harness)."""
    from repro.corpus import GeneratorConfig, generate_module, mutate_source

    config = (
        GeneratorConfig(n_functions=(14, 18), n_classes=(2, 3))
        if big
        else GeneratorConfig(n_functions=(3, 6), n_classes=(0, 2))
    )
    docs = []
    for i in range(n):
        before = generate_module(seed + i, config)
        rng = random.Random(seed * 1_000_003 + i)
        after, _ = mutate_source(before, rng, n_edits=rng.randint(2, 6))
        docs.append((before, after))
    return docs


def local_script(before: str, after: str) -> str:
    """The truechange script transforming ``before`` into ``after``,
    computed entirely client-side (so applying it server-side produces a
    tree the daemon has never been *sent* — it exists only in the
    journal, which is exactly what recovery must replay)."""
    from repro.adapters.pyast import parse_python

    from .pool import diff_trees

    src = parse_python(before).with_canonical_uris()
    dst = parse_python(after).with_canonical_uris()
    return diff_trees(src, dst)["script_json"]


def journal_segments(data_dir: Path) -> list[Path]:
    return sorted((data_dir / "journal").glob("wal-*.log"))


# ---------------------------------------------------------------------------
# scenarios (each returns a list of problems; empty = recovered)


def scenario_restart_identity(seed: int, workdir: Path) -> tuple[list[str], dict]:
    data_dir = workdir / "restart-identity"
    docs = corpus_docs(seed, 4)
    problems: list[str] = []

    daemon = Daemon("--workers", "2", data_dir=data_dir)
    try:
        client = daemon.client()
        fps = []
        for before, after in docs:
            fb = client.put_tree(before, "before.py")["fingerprint"]
            fa = client.put_tree(after, "after.py")["fingerprint"]
            fps.append((fb, fa))
        # one journaled apply: the target tree is never uploaded
        script = local_script(docs[0][0], docs[0][1] + "\nchaos_marker = 1\n")
        acked = client.apply(fps[0][0], json.loads(script))["fingerprint"]
        pre_diffs = [client.diff_raw(fb, fa) for fb, fa in fps]
        pre_trees = sorted(
            (t["fingerprint"], t["nodes"]) for t in client.list_trees()
        )
    finally:
        daemon.sigkill()

    daemon = Daemon("--workers", "2", data_dir=data_dir)
    try:
        client = daemon.client()
        health = client.health()
        recovery = health.get("recovery") or {}
        if not recovery.get("clean"):
            problems.append(f"recovery of an intact layout was not clean: {recovery}")
        post_trees = sorted(
            (t["fingerprint"], t["nodes"]) for t in client.list_trees()
        )
        if post_trees != pre_trees:
            problems.append(
                f"/trees diverged across restart: {len(pre_trees)} pre, "
                f"{len(post_trees)} post"
            )
        for (fb, fa), pre in zip(fps, pre_diffs):
            if client.diff_raw(fb, fa) != pre:
                problems.append(f"diff {fb[:12]}->{fa[:12]} not byte-identical post-restart")
        for fp, _nodes in post_trees:
            v = client.verify(fp)
            if not v["ok"]:
                problems.append(f"recovered tree {fp[:12]} fails verify: {v['violations'][:2]}")
        if not client.verify(acked)["ok"]:
            problems.append("journal-recovered apply result fails verify")
        # the server answer must also match the one-shot CLI byte for byte
        b, a = docs[0]
        before_path, after_path = workdir / "ri-before.py", workdir / "ri-after.py"
        before_path.write_text(b, "utf8")
        after_path.write_text(a, "utf8")
        rc, cli_out = cli_diff_json(before_path, after_path)
        if rc != 0:
            problems.append(f"one-shot CLI diff failed (exit {rc})")
        elif client.diff_raw(fps[0][0], fps[0][1]) != cli_out:
            problems.append("post-restart server diff is not byte-identical to the CLI")
    finally:
        daemon.stop()
    return problems, {"trees": len(pre_trees), "recovery": recovery}


def scenario_kill9_mid_apply(seed: int, workdir: Path) -> tuple[list[str], dict]:
    data_dir = workdir / "kill9-mid-apply"
    base, _ = corpus_docs(seed + 100, 1)[0]
    problems: list[str] = []

    daemon = Daemon(data_dir=data_dir)
    client = daemon.client(retries=0)
    base_fp = client.put_tree(base, "base.py")["fingerprint"]
    variants = [base + f"\nchaos_apply_{i} = {i}\n" for i in range(12)]
    scripts = [local_script(base, v) for v in variants]

    acked: list[str] = []
    stop = threading.Event()

    def apply_stream() -> None:
        for script in scripts:
            if stop.is_set():
                return
            try:
                acked.append(client.apply(base_fp, json.loads(script))["fingerprint"])
            except (ClientError, OSError):
                return  # killed mid-request: that apply was never acked

    thread = threading.Thread(target=apply_stream)
    thread.start()
    deadline = time.time() + 30
    while len(acked) < 3 and thread.is_alive() and time.time() < deadline:
        time.sleep(0.002)
    daemon.sigkill()  # mid-stream, possibly mid-record
    stop.set()
    thread.join(30)
    if len(acked) < 1:
        problems.append("no apply was acknowledged before the kill (scenario vacuous)")

    daemon = Daemon(data_dir=data_dir)
    try:
        client = daemon.client()
        recovery = (client.health().get("recovery") or {})
        for fp in acked:
            try:
                v = client.verify(fp)
            except ClientError as exc:
                problems.append(
                    f"acked apply {fp[:12]} lost across SIGKILL (fsync-before-ack "
                    f"violated): {exc.status}"
                )
                continue
            if not v["ok"]:
                problems.append(f"acked apply {fp[:12]} recovered but fails verify")
        for t in client.list_trees():
            if not client.verify(t["fingerprint"])["ok"]:
                problems.append(f"recovered tree {t['fingerprint'][:12]} fails verify")
    finally:
        daemon.stop()
    return problems, {"acked": len(acked), "recovery": recovery}


def _damaged_journal_scenario(
    seed: int,
    workdir: Path,
    name: str,
    damage: Callable[[bytes, random.Random], tuple[bytes, Any]],
) -> tuple[list[str], dict]:
    """Common shape of ``torn_tail`` / ``flip_byte``: build a journal with
    two applies, damage the segment bytes, restart, assert the daemon
    comes up on a verified store and *reports* the damage."""
    data_dir = workdir / name
    base, other = corpus_docs(seed + 200, 1)[0]
    problems: list[str] = []

    daemon = Daemon(data_dir=data_dir)
    client = daemon.client()
    base_fp = client.put_tree(base, "base.py")["fingerprint"]
    other_fp = client.put_tree(other, "other.py")["fingerprint"]
    acked = [
        client.apply(base_fp, json.loads(local_script(base, base + f"\nx{i} = {i}\n")))[
            "fingerprint"
        ]
        for i in range(2)
    ]
    expected_diff = client.diff_raw(base_fp, other_fp)
    daemon.sigkill()

    segments = journal_segments(data_dir)
    if not segments:
        return ["no journal segment was written"], {}
    target = segments[-1]
    data = target.read_bytes()
    rng = random.Random(seed * 7919 + len(data))
    damaged, detail = damage(data, rng)
    target.write_bytes(damaged)

    daemon = Daemon(data_dir=data_dir)
    try:
        client = daemon.client()
        recovery = (client.health().get("recovery") or {})
        reported = (
            recovery.get("torn_records", 0)
            + recovery.get("records_skipped", 0)
            + recovery.get("fingerprint_mismatches", 0)
            + len(recovery.get("problems") or [])
        )
        survivors = sum(
            1
            for fp in acked
            if _tree_present(client, fp)
        )
        if reported == 0 and survivors == len(acked):
            problems.append(
                f"journal damage ({detail}) was neither reported nor lossy: {recovery}"
            )
        for t in client.list_trees():
            if not client.verify(t["fingerprint"])["ok"]:
                problems.append(f"tree {t['fingerprint'][:12]} fails verify after {name}")
        if client.diff_raw(base_fp, other_fp) != expected_diff:
            problems.append(f"diff answer changed after {name} recovery")
    finally:
        daemon.stop()
    return problems, {
        "detail": str(detail),
        "recovered_applies": recovery.get("applies_replayed"),
        "recovery": recovery,
    }


def _tree_present(client: ServerClient, fp: str) -> bool:
    try:
        return client.verify(fp)["ok"]
    except ClientError:
        return False


def scenario_torn_tail(seed: int, workdir: Path) -> tuple[list[str], dict]:
    # cut less than one whole record so the tail is torn, not merely gone
    return _damaged_journal_scenario(
        seed,
        workdir,
        "torn-tail",
        lambda data, rng: (
            lambda t: (t[0], f"cut {t[1]} tail byte(s)")
        )(truncate_tail(data, rng, max_cut=min(120, max(1, len(data) - 1)))),
    )


def scenario_flip_byte(seed: int, workdir: Path) -> tuple[list[str], dict]:
    return _damaged_journal_scenario(
        seed,
        workdir,
        "flip-byte",
        lambda data, rng: (
            lambda t: (t[0], f"flipped byte at offset {t[1]}")
        )(flip_byte(data, rng)),
    )


def scenario_worker_kill(seed: int, workdir: Path) -> tuple[list[str], dict]:
    problems: list[str] = []
    docs = corpus_docs(seed + 300, 2, big=True)

    daemon = Daemon("--workers", "2")
    try:
        client = daemon.client(retries=0)
        fps = []
        for before, after in docs:
            fb = client.put_tree(before, "b.py")["fingerprint"]
            fa = client.put_tree(after, "a.py")["fingerprint"]
            fps.append((fb, fa))
        # the warm-up diffs above forced the lazily-spawned pool workers
        # into existence; now they are visible as daemon children
        expected = {pair: client.diff_raw(*pair) for pair in fps}
        pids: list[int] = []
        deadline = time.time() + 10
        while not pids and time.time() < deadline:
            pids = worker_pids(daemon.proc.pid)
            time.sleep(0.05)
        if not pids:
            return [], {"skipped": "no /proc children visibility on this platform"}

        n = 12
        results: list[Any] = [None] * n

        def one(i: int) -> None:
            pair = fps[i % len(fps)]
            local = daemon.client(retries=0, timeout_s=60)
            try:
                results[i] = (pair, local.diff_raw(*pair))
            except ClientError as exc:
                results[i] = exc

        threads = [threading.Thread(target=one, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        os.kill(pids[0], signal.SIGKILL)
        for t in threads:
            t.join(90)
        hung = sum(1 for t in threads if t.is_alive())
        if hung:
            problems.append(f"{hung}/{n} requests hung after the worker kill")
        outcomes = {"correct": 0, "unavailable": 0}
        for r in results:
            if isinstance(r, tuple):
                pair, body = r
                if body == expected[pair]:
                    outcomes["correct"] += 1
                else:
                    problems.append(f"mixed-up response for {pair[0][:12]}")
            elif isinstance(r, ClientError):
                if r.status == 503 and r.code == "unavailable":
                    outcomes["unavailable"] += 1
                else:
                    problems.append(
                        f"non-structured failure after worker kill: "
                        f"status={r.status} code={r.code}"
                    )
            elif r is not None:
                problems.append(f"unexpected result {type(r).__name__}")
        # the rebuilt pool must serve again (retries smooth the rebuild window)
        retry_client = daemon.client(retries=5, rng=random.Random(seed))
        if retry_client.diff_raw(*fps[0]) != expected[fps[0]]:
            problems.append("post-rebuild diff is not byte-identical")
    finally:
        daemon.stop()
    return problems, {"workers_seen": len(pids), "outcomes": outcomes}


def scenario_slow_loris(seed: int, workdir: Path) -> tuple[list[str], dict]:
    problems: list[str] = []
    before, after = corpus_docs(seed + 400, 1)[0]

    daemon = Daemon("--header-timeout", "1.0")
    try:
        parts = urlsplit(daemon.base_url)
        stalled = []
        for _ in range(6):
            sock = socket.create_connection((parts.hostname, parts.port), timeout=10)
            sock.sendall(b"POST /diff HTTP/1.1\r\nContent-")  # ...and stall
            stalled.append(sock)

        # well-behaved requests must be served while the loris squats
        client = daemon.client(retries=0, timeout_s=30)
        fb = client.put_tree(before, "b.py")["fingerprint"]
        fa = client.put_tree(after, "a.py")["fingerprint"]
        if not client.diff_raw(fb, fa):
            problems.append("diff failed while slow clients were connected")
        if client.health()["status"] != "ok":
            problems.append("health check failed while slow clients were connected")

        timed_out = 0
        for sock in stalled:
            sock.settimeout(10)
            try:
                head = sock.recv(64)
                if b"408" in head:
                    timed_out += 1
            except OSError:
                pass
            finally:
                sock.close()
        if timed_out == 0:
            problems.append("no stalled connection was answered with 408")
        slow = metric_value(client.metrics(), "repro_server_http_slow_clients_total")
        if slow < 1:
            problems.append(f"slow_clients counter not incremented (got {slow})")
    finally:
        daemon.stop()
    return problems, {"stalled": 6, "timed_out": timed_out, "counter": slow}


def scenario_overload_shed(seed: int, workdir: Path) -> tuple[list[str], dict]:
    problems: list[str] = []
    before, after = corpus_docs(seed + 500, 1, big=True)[0]

    daemon = Daemon("--max-inflight", "1")
    try:
        client = daemon.client(retries=0, timeout_s=120)
        fb = client.put_tree(before, "b.py")["fingerprint"]
        fa = client.put_tree(after, "a.py")["fingerprint"]
        expected = client.diff_raw(fb, fa)

        n = 12
        results: list[Any] = [None] * n

        def one(i: int) -> None:
            local = daemon.client(retries=0, timeout_s=120)
            try:
                results[i] = local.diff_raw(fb, fa)
            except ClientError as exc:
                results[i] = exc

        threads = [threading.Thread(target=one, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)

        shed = succeeded = 0
        for r in results:
            if isinstance(r, bytes):
                if r != expected:
                    problems.append("burst diff returned wrong bytes")
                succeeded += 1
            elif isinstance(r, ClientError) and r.status == 503:
                shed += 1
                if r.retry_after is None:
                    problems.append("shed 503 carried no Retry-After header")
            else:
                problems.append(f"unexpected burst outcome: {r}")
        if succeeded == 0:
            problems.append("overload burst: nothing succeeded")
        if shed == 0:
            problems.append(
                "overload burst: nothing was shed (max-inflight bound not enforced)"
            )
        # a retrying client rides the backoff through the burst
        retry_client = daemon.client(
            retries=6, backoff_base_s=0.05, rng=random.Random(seed)
        )
        if retry_client.diff_raw(fb, fa) != expected:
            problems.append("retrying client did not converge to the right bytes")
        shed_metric = metric_value(
            retry_client.metrics(), "repro_server_http_shed_total"
        )
        if shed and shed_metric < 1:
            problems.append("shed counter not incremented")
    finally:
        daemon.stop()
    return problems, {"shed": shed, "succeeded": succeeded}


def scenario_overhead(
    seed: int, workdir: Path, max_overhead_pct: float = 25.0
) -> tuple[list[str], dict]:
    """The durable store's write path vs the in-memory store on the same
    put/apply mix the server smoke gate drives (parse-heavy uploads plus
    journaled applies), best-of-3 to shave scheduler noise."""
    from .store import TreeStore

    docs = corpus_docs(seed + 600, 6)
    scripts = [local_script(b, a) for b, a in docs]
    from repro.core.serialize import script_from_json

    parsed_scripts = [script_from_json(s) for s in scripts]

    def drive(store) -> None:
        for (before, _after), script in zip(docs, parsed_scripts):
            entry, _ = store.put_source(before, "b.py")
            store.apply(entry.fingerprint, script)

    def best_of(make_store, rounds: int = 3) -> float:
        best = float("inf")
        for i in range(rounds):
            store = make_store(i)
            t0 = time.perf_counter()
            drive(store)
            best = min(best, time.perf_counter() - t0)
            if hasattr(store, "close"):
                store.close()
        return best

    t_memory = best_of(lambda i: TreeStore(max_trees=256))

    from .durable import DurableTreeStore

    def durable(i: int) -> DurableTreeStore:
        path = workdir / f"overhead-{i}"
        shutil.rmtree(path, ignore_errors=True)
        return DurableTreeStore(path, max_trees=256)

    t_durable = best_of(durable)
    overhead_pct = (t_durable - t_memory) / t_memory * 100 if t_memory else 0.0
    problems = []
    if overhead_pct > max_overhead_pct:
        problems.append(
            f"durable write overhead {overhead_pct:.1f}% exceeds the "
            f"{max_overhead_pct:.0f}% gate (memory {t_memory * 1000:.1f} ms, "
            f"durable {t_durable * 1000:.1f} ms)"
        )
    return problems, {
        "memory_ms": round(t_memory * 1000, 2),
        "durable_ms": round(t_durable * 1000, 2),
        "overhead_pct": round(overhead_pct, 1),
    }


SCENARIOS: dict[str, Callable[[int, Path], tuple[list[str], dict]]] = {
    "restart_identity": scenario_restart_identity,
    "kill9_mid_apply": scenario_kill9_mid_apply,
    "torn_tail": scenario_torn_tail,
    "flip_byte": scenario_flip_byte,
    "worker_kill": scenario_worker_kill,
    "slow_loris": scenario_slow_loris,
    "overload_shed": scenario_overload_shed,
    "overhead": scenario_overhead,
}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.chaos",
        description="seeded process-level chaos campaign for the diff daemon",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated subset to run (default: all: %s)"
        % ",".join(SCENARIOS),
    )
    parser.add_argument(
        "--out", default=None, help="write one JSON object per scenario to this file"
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=25.0,
        help="durable-store write overhead gate (default 25)",
    )
    args = parser.parse_args(argv)

    names = list(SCENARIOS)
    if args.scenarios:
        names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            print(f"chaos: unknown scenario(s): {unknown}", file=sys.stderr)
            return 2

    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    out = open(args.out, "w", encoding="utf8") if args.out else None
    unrecovered: list[str] = []
    try:
        for name in names:
            t0 = time.perf_counter()
            try:
                if name == "overhead":
                    problems, extra = scenario_overhead(
                        args.seed, workdir, args.max_overhead_pct
                    )
                else:
                    problems, extra = SCENARIOS[name](args.seed, workdir)
            except Exception as exc:  # noqa: BLE001 - a crashed scenario IS a failure
                problems, extra = [f"scenario crashed: {type(exc).__name__}: {exc}"], {}
            row = {
                "scenario": name,
                "seed": args.seed,
                "ok": not problems,
                "problems": problems,
                "elapsed_s": round(time.perf_counter() - t0, 3),
                **extra,
            }
            status = "ok" if not problems else "FAIL"
            print(f"chaos: {name}: {status} ({row['elapsed_s']}s)", flush=True)
            for p in problems:
                print(f"chaos:   PROBLEM: {p}", file=sys.stderr)
                unrecovered.append(f"{name}: {p}")
            if out:
                print(json.dumps(row, default=str), file=out, flush=True)
        if out:
            print(
                json.dumps(
                    {
                        "summary": {
                            "scenarios": len(names),
                            "unrecovered": unrecovered,
                            "ok": not unrecovered,
                        }
                    }
                ),
                file=out,
            )
    finally:
        if out:
            out.close()
        shutil.rmtree(workdir, ignore_errors=True)

    print(
        f"chaos campaign: {len(names)} scenario(s), "
        f"{len(unrecovered)} unrecovered problem(s)",
        file=sys.stderr,
    )
    return 0 if not unrecovered else 1


if __name__ == "__main__":
    raise SystemExit(main())
