"""End-to-end differential gate for the diff daemon (the CI
``server-smoke`` job; runnable locally as ``python -m repro.server.smoke``).

What it enforces, against a real ``python -m repro serve`` subprocess:

1. **Byte identity** — for every frozen-corpus pair, the server's raw
   diff response equals the stdout of one-shot ``repro diff --json``
   byte for byte (unparseable sources must come back as structured 400s,
   mirroring the CLI's exit-2 diagnostics);
2. **Parse-once caching** — re-uploading a source is a store cache hit,
   a repeated fingerprint diff re-parses nothing
   (``repro_server_store_parses_total`` scraped from ``/metrics`` stays
   exactly one parse per distinct upload, before and after the repeat);
3. **Concurrency** — ≥ 32 concurrent fingerprint diffs all succeed with
   identical bytes;
4. **Observability surfaces** — ``/metrics`` is scrapeable Prometheus
   text carrying the request counters, ``/trace`` yields a Chrome trace
   document with ``repro.server.request`` spans;
5. **Batch apply** — ``/apply-batch`` schedules three independent
   scripts into one wave, applies them (in parallel when the daemon has
   workers) with the in-request differential oracle on, lands on the
   same fingerprint as uploading the combined source, and is
   deterministic across repeats;
6. **Graceful shutdown** — ``POST /shutdown`` drains and the daemon
   exits 0.

Exit status: 0 all gates pass, 1 any gate fails, 2 setup problems.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

from .client import ClientError, ServerClient

LISTENING = re.compile(r"listening on (http://[^ ]+)")


def metric_value(metrics_text: str, name: str) -> float:
    """One un-labelled sample value from a Prometheus exposition."""
    for line in metrics_text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return 0.0


def corpus_pairs(root: Path) -> list[tuple[Path, Path]]:
    from repro.batch import discover_pairs

    pairs, _, _ = discover_pairs(str(root / "before"), str(root / "after"))
    return [(Path(b), Path(a)) for b, a in pairs]


def cli_diff_json(before: Path, after: Path) -> "tuple[int, bytes]":
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "diff", str(before), str(after), "--json"],
        capture_output=True,
    )
    return proc.returncode, proc.stdout


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.server.smoke")
    parser.add_argument(
        "--corpus",
        default="tests/fixtures/batch",
        help="frozen corpus root with before/ and after/ (default tests/fixtures/batch)",
    )
    parser.add_argument("--workers", type=int, default=2, help="daemon diff workers")
    parser.add_argument(
        "--concurrency", type=int, default=32, help="simultaneous diff requests (>= 32)"
    )
    parser.add_argument(
        "--startup-timeout", type=float, default=30.0, help="seconds to wait for the daemon"
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help="run the daemon on a durable store rooted here (exercises the "
        "WAL write path under every gate)",
    )
    args = parser.parse_args(argv)

    corpus = Path(args.corpus)
    if not (corpus / "before").is_dir():
        print(f"smoke: corpus not found: {corpus}", file=sys.stderr)
        return 2
    pairs = corpus_pairs(corpus)
    if not pairs:
        print(f"smoke: no pairs under {corpus}", file=sys.stderr)
        return 2

    argv_daemon = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--workers",
        str(args.workers),
    ]
    if args.data_dir:
        argv_daemon += ["--data-dir", args.data_dir]
    daemon = subprocess.Popen(argv_daemon, stderr=subprocess.PIPE, text=True)
    failures: list[str] = []

    def fail(msg: str) -> None:
        print(f"smoke: FAIL: {msg}", file=sys.stderr)
        failures.append(msg)

    try:
        # -- wait for the listener ------------------------------------
        base_url = None
        deadline = time.time() + args.startup_timeout
        assert daemon.stderr is not None
        while time.time() < deadline:
            line = daemon.stderr.readline()
            if not line:
                break
            match = LISTENING.search(line)
            if match:
                base_url = match.group(1)
                break
        if base_url is None:
            print("smoke: daemon never reported a listening address", file=sys.stderr)
            daemon.kill()
            return 2
        client = ServerClient(base_url)
        print(f"smoke: daemon up at {base_url}, {len(pairs)} corpus pair(s)")

        # -- gate 1: byte identity across the corpus ------------------
        fingerprints: dict[Path, str] = {}
        diffable: list[tuple[Path, Path]] = []
        for before, after in pairs:
            rc, cli_out = cli_diff_json(before, after)
            if rc == 2:
                # CLI rejects the pair (syntax/io): the server must
                # reject the upload with a structured bad_request
                for path in (before, after):
                    try:
                        client.put_tree(path.read_text("utf8"), str(path))
                    except ClientError as exc:
                        if exc.status != 400:
                            fail(f"{path}: expected 400, got {exc.status}")
                    except OSError:
                        pass
                continue
            if rc != 0:
                fail(f"CLI diff failed on {before} -> {after} (exit {rc})")
                continue
            fps = []
            for path in (before, after):
                if path not in fingerprints:
                    fingerprints[path] = client.put_tree(
                        path.read_text("utf8"), str(path)
                    )["fingerprint"]
                fps.append(fingerprints[path])
            server_out = client.diff_raw(fps[0], fps[1])
            if server_out != cli_out:
                fail(f"{before} -> {after}: server diff is not byte-identical to CLI")
            else:
                diffable.append((before, after))
        distinct = len(set(fingerprints.values()))
        print(
            f"smoke: byte-identity: {len(diffable)} pair(s) identical, "
            f"{distinct} distinct tree(s) stored"
        )

        # -- gate 2: parse-once caching -------------------------------
        parses_before = metric_value(client.metrics(), "repro_server_store_parses_total")
        before, after = diffable[0]
        first = client.diff_raw(fingerprints[before], fingerprints[after])
        repeat = client.diff_raw(fingerprints[before], fingerprints[after])
        if first != repeat:
            fail("repeated diff request returned different bytes")
        for path in (before, after):  # re-upload: content-addressed hit
            again = client.put_tree(path.read_text("utf8"), str(path))
            if not again["cached"]:
                fail(f"re-upload of {path} was not a store cache hit")
        metrics = client.metrics()
        parses_after = metric_value(metrics, "repro_server_store_parses_total")
        # re-uploads pay their discovery parse; fingerprint diffs must not
        if parses_after - parses_before != 2:
            fail(
                "fingerprint-addressed diffs re-parsed in the store: "
                f"parses went {parses_before} -> {parses_after} (expected +2 re-upload parses)"
            )
        if metric_value(metrics, "repro_server_store_dups_total") < 2:
            fail("re-uploads were not counted as store dups")
        print(
            f"smoke: parse-once: store parses {parses_after:.0f} "
            f"(uploads only), repeat diff identical"
        )

        # -- gate 3: concurrency --------------------------------------
        n = max(32, args.concurrency)
        results: list = [None] * n
        def one(i: int) -> None:
            b, a = diffable[i % len(diffable)]
            try:
                results[i] = client.diff_raw(fingerprints[b], fingerprints[a])
            except Exception as exc:  # noqa: BLE001 - recorded and asserted
                results[i] = exc
        threads = [threading.Thread(target=one, args=(i,)) for i in range(n)]
        t0 = time.time()
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        errors = [r for r in results if not isinstance(r, bytes)]
        if errors:
            fail(f"{len(errors)}/{n} concurrent requests failed: {errors[:3]}")
        else:
            print(f"smoke: concurrency: {n} simultaneous diffs ok in {time.time() - t0:.2f}s")

        # -- gate 4: observability surfaces ---------------------------
        if "repro_server_requests_total" not in metrics:
            fail("/metrics exposition lacks repro_server_requests_total")
        trace = client.trace()
        names = {e.get("name") for e in trace.get("traceEvents", []) if e.get("ph") == "X"}
        if "repro.server.request" not in names:
            fail(f"/trace has no repro.server.request spans (got {sorted(names)[:5]})")
        else:
            print(f"smoke: observability: /metrics scrapeable, /trace has {len(names)} span name(s)")

        # -- gate 5: batch apply under the truerace schedule ----------
        batch_src = (
            "def f(x):\n    return x + 1\n\n"
            "def g(y):\n    return y * 2\n\n"
            "def h(z):\n    return z - 3\n"
        )
        edits = [("x + 1", "x + 100"), ("y * 2", "y * 200"), ("z - 3", "z - 300")]
        combined = batch_src
        for old, new in edits:
            combined = combined.replace(old, new)
        base_fp = client.put_tree(batch_src, "batch.py")["fingerprint"]
        scripts = [
            client.diff(base_fp, {"source": batch_src.replace(old, new)})["script"]
            for old, new in edits
        ]
        out = client.apply_batch(base_fp, scripts, oracle=True)
        if out["applied"] != 3 or out["rejected"] != 0:
            fail(f"apply-batch verdicts: {out['applied']} applied, {out['rejected']} rejected")
        if out["schedule"]["waves"] != [[0, 1, 2]]:
            fail(f"independent scripts did not schedule into one wave: {out['schedule']['waves']}")
        if not out.get("oracle", {}).get("ok"):
            fail(f"apply-batch differential oracle: {out.get('oracle')}")
        want = client.put_tree(combined, "batch.py")
        if not want["cached"] or want["fingerprint"] != out["fingerprint"]:
            fail("apply-batch result is not the combined-source tree")
        again = client.apply_batch(base_fp, scripts, commit=False, oracle=True)
        if again["fingerprint"] != out["fingerprint"]:
            fail("apply-batch is not deterministic across repeats")
        if not failures:
            print(
                f"smoke: apply-batch: 3 scripts, 1 wave, mode {out['mode']}, "
                f"oracle ok, fingerprint matches combined source"
            )

        # -- gate 6: graceful shutdown --------------------------------
        client.shutdown()
        rc = daemon.wait(timeout=60)
        if rc != 0:
            fail(f"daemon exited {rc} after graceful shutdown")
        else:
            print("smoke: shutdown: drained and exited 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    if failures:
        print(f"smoke: {len(failures)} gate failure(s)", file=sys.stderr)
        return 1
    print("smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
