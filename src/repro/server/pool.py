"""Worker-process pool for heavy diff requests.

The daemon's request handlers are I/O-bound glue; the diff itself is the
CPU-heavy part.  This module shards it across a ``ProcessPoolExecutor``
reusing the batch layer's cross-process machinery wholesale: every task
carries the obs **envelope** built by a
:class:`~repro.observability.aggregate.TelemetryCollector`, workers
reset fork-inherited state through
:func:`~repro.observability.aggregate.worker_setup`, adopt the request's
trace context as a resample point (so a request stays ONE causal trace
even when its diff ran in another process), and ship their span/metric
deltas back via :func:`~repro.observability.aggregate.worker_telemetry`
for the driver-side merge — which is what makes the daemon's
``/metrics`` endpoint cover the whole pool.

Workers keep a process-local cache of parsed trees keyed by the store
fingerprint (``repro.server.worker.tree_hits`` / ``.parses``), so a hot
tree is parsed at most once per worker process, not once per request.

:func:`diff_trees` is the single definition of "what a diff request
computes", shared by the pool worker and the daemon's inline path, and
written to be call-for-call identical to ``repro diff`` — the
differential gate in CI holds the two byte-identical.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.core import TNode
from repro.observability import OBS, metrics as _metrics, span as _span


def diff_trees(src: TNode, dst: TNode) -> dict[str, Any]:
    """Diff two canonical trees exactly as ``repro diff`` does.

    Same option set, same fresh-URI numbering (``start = src.size + 1``
    over pre-order canonical URIs), same static validation — so
    ``result["script_json"]`` is byte-identical to the stdout of
    ``repro diff --json`` on the corresponding sources.
    """
    from repro.core import DiffOptions, URIGen, diff, validate_script
    from repro.core.serialize import script_to_json

    t0 = time.perf_counter()
    script, _ = diff(
        src, dst, DiffOptions(typecheck="none"), urigen=URIGen(start=src.size + 1)
    )
    diff_ms = (time.perf_counter() - t0) * 1000
    validate_script(script, src.sigs, "static")
    mix: dict[str, int] = {}
    for edit in script.primitives():
        kind = type(edit).__name__.lower()
        mix[kind] = mix.get(kind, 0) + 1
    return {
        "edits": len(script),
        "edit_mix": mix,
        "src_nodes": src.size,
        "dst_nodes": dst.size,
        "diff_ms": round(diff_ms, 3),
        "script_json": script_to_json(script, indent=2),
    }


#: Worker-process tree cache: fingerprint -> canonical TNode (FIFO-bounded).
_WORKER_TREES: dict[str, TNode] = {}
_WORKER_TREES_MAX = 256


def _worker_init() -> None:
    """Pool-worker initializer: shed fork-inherited daemon state.

    Two hazards, both from the ``fork`` start method:

    * **Signal state.**  The daemon's asyncio loop registers
      SIGTERM/SIGINT via ``add_signal_handler``, which installs a noop
      C-level handler plus a self-pipe wakeup fd — and a forked worker
      inherits both.  Left in place, a SIGTERM aimed at the *worker*
      (e.g. by ``ProcessPoolExecutor``'s own ``terminate_broken``)
      (a) does not kill it, leaving an immortal child that 3.11's
      ``shutdown_workers`` busy-spins on forever, and (b) is *relayed
      to the daemon*: the worker's handler writes the signal byte into
      the shared wakeup socketpair, the daemon's loop reads it and runs
      its own SIGTERM callback — a graceful shutdown nobody asked for.
      Restoring the default dispositions and detaching the wakeup fd
      makes a worker signal mean exactly what the sender intended.

    * **Parent death.**  A SIGKILL'd daemon cannot shut its pool down,
      and forked workers inherit every parent fd — including the
      ``flock`` on a durable store's data dir — so an orphaned worker
      blocked on the call queue would hold the lock forever and wedge
      the *next* daemon's startup.  A tiny daemon thread watches for
      re-parenting (``getppid`` changes once the real parent is gone)
      and hard-exits the worker.
    """
    import os
    import signal
    import threading

    try:
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
    except (ValueError, OSError):
        pass  # non-main thread or exotic platform: keep what we have

    parent = os.getppid()

    def watch() -> None:
        while os.getppid() == parent:
            time.sleep(0.5)
        os._exit(2)

    threading.Thread(target=watch, name="repro-parent-watchdog", daemon=True).start()


def _worker_tree(spec: dict[str, Any]) -> TNode:
    """Resolve one tree spec ``{"fingerprint", "source", "filename"}`` in
    the worker, via the process-local cache."""
    fp = spec["fingerprint"]
    tree = _WORKER_TREES.get(fp)
    if tree is not None:
        if OBS.enabled:
            _metrics().counter("repro.server.worker.tree_hits").inc()
        return tree
    from repro.adapters.pyast import parse_python

    tree = parse_python(spec["source"], spec.get("filename") or "<stored>")
    tree = tree.with_canonical_uris()
    if len(_WORKER_TREES) >= _WORKER_TREES_MAX:
        _WORKER_TREES.pop(next(iter(_WORKER_TREES)))
    _WORKER_TREES[fp] = tree
    if OBS.enabled:
        _metrics().counter("repro.server.worker.parses").inc()
    return tree


def pool_diff_task(
    payload: dict[str, Any], obs_env: Optional[dict[str, Any]]
) -> dict[str, Any]:
    """Top-level (picklable) pool task: one diff request in a worker.

    Returns ``{"result": ..., "telemetry": ...}`` — the same two-part
    shape as :func:`repro.batch.worker.run_chunk`'s instrumented mode,
    absorbed by the daemon's collector.  Never raises: a failing diff
    becomes ``result={"ok": False, ...}`` so one bad request cannot
    poison the worker or the pool.
    """
    from repro.observability import remote_context
    from repro.observability.aggregate import worker_setup, worker_telemetry

    worker_setup(obs_env)
    ctx = obs_env.get("trace_ctx") if obs_env else None
    with remote_context(ctx, resample=True):
        with _span("repro.server.pool.diff") as sp:
            try:
                src = _worker_tree(payload["before"])
                dst = _worker_tree(payload["after"])
                result = diff_trees(src, dst)
                result["ok"] = True
                sp.set_attrs(
                    before=payload["before"]["fingerprint"],
                    after=payload["after"]["fingerprint"],
                    edits=result["edits"],
                )
            except Exception as exc:
                result = {
                    "ok": False,
                    "error": " ".join((str(exc) or type(exc).__name__).split()),
                    "error_type": type(exc).__name__,
                }
                sp.set_status("error", type(exc).__name__)
    return {"result": result, "telemetry": worker_telemetry(obs_env)}


def pool_apply_task(
    payload: dict[str, Any], obs_env: Optional[dict[str, Any]]
) -> dict[str, Any]:
    """Top-level (picklable) pool task: validate one edit script of an
    ``/apply-batch`` request against its base tree, in a worker.

    The worker runs the script's **full transactional validation** —
    parse, pre-flight linear typecheck, atomic patch, post-patch
    integrity verify — against a scratch ``MTree`` of the base (resolved
    through the same fingerprint-keyed worker cache the diff task uses,
    so a hot base parses once per worker).  This is the per-script O(n)
    work ``/apply-batch`` fans out; the daemon only *composes* scripts
    the workers have already validated.

    ``result["ok"]`` reports whether the task ran; the script's verdict
    is ``result["applied"]`` — a rejected patch (``PatchError``) is an
    expected outcome, not a worker failure, so it can never poison the
    pool.
    """
    from repro.core import PatchError, tnode_to_mtree
    from repro.core.serialize import script_from_json
    from repro.observability import remote_context
    from repro.observability.aggregate import worker_setup, worker_telemetry

    worker_setup(obs_env)
    ctx = obs_env.get("trace_ctx") if obs_env else None
    with remote_context(ctx, resample=True):
        with _span("repro.server.pool.apply") as sp:
            index = payload.get("index")
            try:
                base = _worker_tree(payload["base"])
                script = script_from_json(payload["script_json"])
                t0 = time.perf_counter()
                mtree = tnode_to_mtree(base)
                try:
                    mtree.patch(
                        script, atomic=True, sigs=base.sigs, verify=True
                    )
                except PatchError as exc:
                    result = {
                        "ok": True,
                        "applied": False,
                        "index": index,
                        "error": " ".join(str(exc).split()),
                        "error_type": type(exc).__name__,
                    }
                    sp.set_status("error", type(exc).__name__)
                else:
                    result = {
                        "ok": True,
                        "applied": True,
                        "index": index,
                        "edits": len(script),
                        "apply_ms": round((time.perf_counter() - t0) * 1000, 3),
                    }
                sp.set_attrs(
                    base=payload["base"]["fingerprint"], index=index
                )
            except Exception as exc:
                result = {
                    "ok": False,
                    "index": index,
                    "error": " ".join((str(exc) or type(exc).__name__).split()),
                    "error_type": type(exc).__name__,
                }
                sp.set_status("error", type(exc).__name__)
    return {"result": result, "telemetry": worker_telemetry(obs_env)}


class DiffPool:
    """A ``ProcessPoolExecutor`` carrying the obs envelope on every task.

    ``submit`` returns the executor's future (awaitable via
    ``asyncio.wrap_future``); :meth:`finish` normalizes the two-part
    result, absorbing worker telemetry into ``collector`` so the daemon
    registry stays the single pane of glass.  A broken pool (a worker
    died mid-request) is rebuilt transparently; the in-flight request
    gets a structured error instead of a hung future.
    """

    def __init__(self, workers: int, collector=None) -> None:
        import threading
        from concurrent.futures import ProcessPoolExecutor

        if workers < 1:
            raise ValueError(f"pool needs >= 1 worker, got {workers}")
        self.workers = workers
        self.collector = collector
        self._executor = ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        )
        self._rebuild_lock = threading.Lock()
        self._closed = False

    def submit(self, payload: dict[str, Any], task=None):
        """Submit ``payload`` to a worker; ``task`` picks the (picklable)
        task function, defaulting to :func:`pool_diff_task`."""
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        task_fn = task if task is not None else pool_diff_task
        obs_env = self.collector.envelope() if self.collector is not None else None
        for _attempt in range(2):
            executor = self._executor
            try:
                future = executor.submit(task_fn, payload, obs_env)
            except (BrokenProcessPool, RuntimeError):
                # the pool broke (or closed) before this request entered
                # it; rebuild once and retry on the fresh executor
                self._rebuild(executor)
                continue
            # remember which executor generation answered this submit so a
            # burst of concurrent failures rebuilds the pool exactly once
            future.repro_pool_executor = executor
            return future
        # still broken: hand finish() a pre-failed future so the caller
        # gets the same structured unavailable answer, never a raw raise
        future = Future()
        future.repro_pool_executor = self._executor
        future.set_exception(BrokenProcessPool("process pool unavailable"))
        return future

    def finish(self, future, timeout_s: Optional[float] = None) -> dict[str, Any]:
        """Resolve one submitted future into its ``result`` dict.

        With ``timeout_s``, a worker that has not answered by the
        deadline is treated as wedged: every pool process is killed, the
        pool is rebuilt, and the request gets a structured ``Timeout``
        error (the service maps it to 503) instead of waiting forever.
        """
        from concurrent.futures import CancelledError
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool

        submitted_to = getattr(future, "repro_pool_executor", None)
        try:
            out = future.result(timeout=timeout_s)
        except FutureTimeout:
            if OBS.enabled:
                _metrics().counter("repro.server.pool.timeouts").inc()
            self._kill_workers(submitted_to)
            self._rebuild(submitted_to)
            return {
                "ok": False,
                "error": (
                    f"diff exceeded its {timeout_s:g}s deadline "
                    "(worker killed, pool rebuilt)"
                ),
                "error_type": "Timeout",
            }
        except BrokenProcessPool:
            self._rebuild(submitted_to)
            return {
                "ok": False,
                "error": "diff worker died (process pool rebuilt)",
                "error_type": "BrokenProcessPool",
            }
        except CancelledError:
            # our own rebuild cancelled this queued task; same structured
            # answer as the broken pool that caused the rebuild
            return {
                "ok": False,
                "error": "diff cancelled while the process pool was rebuilt",
                "error_type": "BrokenProcessPool",
            }
        if self.collector is not None:
            self.collector.absorb(out.get("telemetry"))
        return out["result"]

    def _kill_workers(self, executor=None) -> None:
        """SIGKILL every live pool process (the wedged one included) —
        ``shutdown`` alone would join a worker stuck in C code forever."""
        for proc in list(getattr(executor or self._executor, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError, ValueError):
                pass

    def _rebuild(self, broken=None) -> None:
        """Replace the executor — once per broken generation, however
        many concurrent requests observed the same failure."""
        from concurrent.futures import ProcessPoolExecutor

        with self._rebuild_lock:
            if broken is not None and broken is not self._executor:
                return  # another request already swapped this generation out
            if OBS.enabled:
                _metrics().counter("repro.server.pool.rebuilds").inc()
            # SIGKILL the generation's remaining workers before shutdown.
            # CPython 3.11's terminate_broken() only SIGTERMs them and (on
            # POSIX, gh-107219) never closes the call-queue writer, so a
            # feeder thread stuck in send_bytes() keeps the queue full and
            # shutdown_workers() busy-spins on put_nowait() for as long as
            # any child is alive — a 100%-CPU wedge that starves the whole
            # daemon.  Killing the workers drops get_n_children_alive() to
            # zero (ending the spin) and EPIPEs the feeder loose.
            self._kill_workers(self._executor)
            self._executor.shutdown(wait=False, cancel_futures=True)
            if not self._closed:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, initializer=_worker_init
                )

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
