"""Asyncio HTTP/1.1 front end for the diff daemon.

Stdlib-only (no aiohttp in the toolchain): a small, strict HTTP/1.1
request loop over ``asyncio.start_server`` streams.  One request per
connection (``Connection: close``) keeps the parser trivial and is
plenty for the workloads the smoke gate drives (curl, urllib, dozens of
concurrent clients).

Routes::

    GET  /healthz            liveness + store/request counters
    GET  /metrics            Prometheus text exposition (daemon + workers)
    GET  /trace[?format=F]   drain collected spans (chrome | otlp)
    GET  /trees              list stored fingerprints
    POST /trees              {"source", "filename"?}        -> fingerprint
    POST /diff               {"before", "after", "raw"?}    -> script
    POST /apply              {"tree", "script", "commit"?}  -> new fingerprint
    POST /apply-batch        {"tree", "scripts", "commit"?, "parallel"?,
                              "oracle"?}  -> fingerprint + schedule + verdicts
    POST /lint               {"script"}                     -> lint report
    POST /verify             {"tree"}                       -> violations
    POST /merge              {"left", "right"}              -> merged script
    POST /shutdown           respond, then drain and stop

``POST /diff`` with ``"raw": true`` responds with the bare truechange
JSON document (trailing newline included) — byte-identical to the
stdout of ``repro diff --json``, which is what the CI differential gate
compares against.

Graceful shutdown (``POST /shutdown``, SIGTERM, SIGINT): the listener
closes first (new connections are refused), every in-flight request
runs to completion and flushes its response, then the daemon returns.
A drain that exceeds ``drain_timeout_s`` gives up waiting rather than
hanging the host's supervisor.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional
from urllib.parse import parse_qs, urlparse

from repro.observability import OBS, chrome_trace, metrics as _metrics, otlp_spans

from .service import ReproService, ServiceError

#: Hard cap on request body size (64 MiB source files are not diffs).
MAX_BODY = 64 * 1024 * 1024
MAX_HEAD = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Transport-level statuses -> the same stable string codes
#: :data:`~repro.server.service.ERROR_STATUS` uses, so every error body —
#: service-level or transport-level — is one envelope:
#: ``{"error": {"code": "<string>", "message": "..."}}``.
_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    408: "timeout",
    409: "conflict",
    413: "payload_too_large",
    500: "internal",
    503: "unavailable",
}


class _HTTPError(Exception):
    def __init__(self, status: int, message: str, retry_after: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ReproHTTPServer:
    """The daemon: one service instance behind an asyncio listener."""

    def __init__(
        self,
        service: ReproService,
        host: str = "127.0.0.1",
        port: int = 8337,
        drain_timeout_s: float = 30.0,
        max_inflight: int = 0,
        request_timeout_s: Optional[float] = None,
        header_timeout_s: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout_s = drain_timeout_s
        #: admission bound on concurrently *executing* POST operations
        #: (0 = unbounded); excess requests are shed with 503 +
        #: ``Retry-After`` instead of queueing on the executor.
        self.max_inflight = max_inflight
        #: deadline for one operation's execution (None = no deadline)
        self.request_timeout_s = (
            request_timeout_s if request_timeout_s and request_timeout_s > 0 else None
        )
        #: slow-loris cap: one fixed window for the request head, and an
        #: *idle* bound on the body (each arriving chunk resets the
        #: clock, so a large upload on a slow-but-moving link survives)
        self.header_timeout_s = header_timeout_s
        self._active = 0
        self._server: Optional[asyncio.AbstractServer] = None
        #: request handlers run on this executor; sized for pool-backed
        #: daemons whose handler threads mostly block on worker futures.
        workers = service.pool.workers if service.pool is not None else 0
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, workers * 2), thread_name_prefix="repro-serve"
        )
        self._inflight: set[asyncio.Task] = set()
        self._closing = False
        self._done = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` completes (however triggered)."""
        await self._done.wait()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, release the pool."""
        if self._closing:
            await self._done.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._inflight:
            await asyncio.wait(
                set(self._inflight), timeout=self.drain_timeout_s
            )
        self._executor.shutdown(wait=True)
        self.service.close()
        self._done.set()

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inflight.add(task)
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            if task is not None:
                self._inflight.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target, body = await self._read_request(reader)
        except _HTTPError as exc:
            await self._respond_error(writer, exc.status, exc.message)
            return
        if self._closing:
            await self._respond_error(writer, 503, "server is draining")
            return
        if OBS.enabled:
            _metrics().counter("repro.server.http.requests").inc()
        try:
            status, payload, raw = await self._route(method, target, body)
        except _HTTPError as exc:
            await self._respond_error(
                writer, exc.status, exc.message, retry_after=exc.retry_after
            )
            return
        except ServiceError as exc:
            await self._respond(
                writer,
                exc.status,
                json.dumps({"error": exc.as_dict()}) + "\n",
                retry_after=1 if exc.status == 503 else None,
            )
            return
        body_text = raw if raw is not None else json.dumps(payload, sort_keys=True) + "\n"
        content_type = "text/plain; version=0.0.4; charset=utf-8" if isinstance(
            payload, str
        ) else "application/json"
        await self._respond(writer, status, body_text, content_type)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.header_timeout_s
            )
        except asyncio.TimeoutError:
            if OBS.enabled:
                _metrics().counter("repro.server.http.slow_clients").inc()
            raise _HTTPError(
                408, f"request head not received within {self.header_timeout_s:g}s"
            ) from None
        except asyncio.LimitOverrunError:
            raise _HTTPError(413, "request head too large") from None
        if len(head) > MAX_HEAD:
            raise _HTTPError(413, "request head too large")
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HTTPError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HTTPError(400, "malformed Content-Length") from None
        if length < 0 or length > MAX_BODY:
            raise _HTTPError(413, f"request body too large ({length} bytes)")
        if length:
            # progress-based deadline: each chunk restarts the clock, so
            # only a *stalled* body is shed — a legitimate large upload
            # on a slow link keeps its 200 as long as bytes arrive
            buf = bytearray()
            try:
                while len(buf) < length:
                    chunk = await asyncio.wait_for(
                        reader.read(min(65536, length - len(buf))),
                        self.header_timeout_s,
                    )
                    if not chunk:
                        raise _HTTPError(400, "request body truncated by peer")
                    buf.extend(chunk)
            except asyncio.TimeoutError:
                if OBS.enabled:
                    _metrics().counter("repro.server.http.slow_clients").inc()
                raise _HTTPError(
                    408,
                    f"request body stalled (no data for {self.header_timeout_s:g}s)",
                ) from None
            body = bytes(buf)
        else:
            body = b""
        return method.upper(), target, body

    # ------------------------------------------------------------------
    # routing

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, Any, Optional[str]]:
        url = urlparse(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}

        if method == "GET":
            if path == "/healthz":
                return 200, await self._dispatch("health", {}), None
            if path == "/metrics":
                text = self.service.metrics_text()
                return 200, text, text
            if path == "/trace":
                spans = self.service.drain_spans()
                fmt = query.get("format", "chrome")
                if fmt == "otlp":
                    doc = otlp_spans(spans)
                elif fmt == "chrome":
                    doc = chrome_trace(spans)
                else:
                    raise _HTTPError(400, f"unknown trace format {fmt!r}")
                return 200, doc, json.dumps(doc) + "\n"
            if path == "/trees":
                return 200, await self._dispatch("list_trees", {}), None
            raise _HTTPError(404, f"no such resource: {path}")

        if method != "POST":
            raise _HTTPError(405, f"unsupported method {method}")

        if path == "/shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return 200, {"ok": True, "draining": self.inflight}, None

        ops = {
            "/trees": "put_tree",
            "/diff": "diff",
            "/apply": "apply",
            "/apply-batch": "apply_batch",
            "/lint": "lint",
            "/verify": "verify",
            "/merge": "merge",
        }
        op = ops.get(path)
        if op is None:
            raise _HTTPError(404, f"no such resource: {path}")
        try:
            params = json.loads(body.decode("utf8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(params, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        # bounded admission: shed instead of queueing unboundedly (POSTs
        # only — GETs are cheap reads and must stay observable under load)
        if self.max_inflight > 0 and self._active >= self.max_inflight:
            if OBS.enabled:
                _metrics().counter("repro.server.http.shed").inc()
            raise _HTTPError(
                503,
                f"server at capacity ({self._active} operations in flight)",
                retry_after=1,
            )
        result = await self._dispatch(op, params, counted=True)
        if op == "diff" and (params.get("raw") or query.get("raw")):
            return 200, result, result["script_json"] + "\n"
        return 200, result, None

    async def _dispatch(
        self, op: str, params: dict[str, Any], counted: bool = False
    ) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        fut = loop.run_in_executor(self._executor, self.service.handle, op, params)
        if not counted:
            return await fut
        # the admission slot is held until the executor thread actually
        # finishes (a deadline-exceeded handler cannot be cancelled, and
        # pretending its slot is free would defeat the shed bound)
        self._active += 1

        def _release(f: asyncio.Future) -> None:
            self._active -= 1
            if not f.cancelled():
                f.exception()  # consume: nobody awaits an abandoned future

        fut.add_done_callback(_release)
        if self.request_timeout_s is None:
            return await fut
        try:
            return await asyncio.wait_for(asyncio.shield(fut), self.request_timeout_s)
        except asyncio.TimeoutError:
            if OBS.enabled:
                _metrics().counter("repro.server.http.deadline_exceeded").inc()
            raise _HTTPError(
                503,
                f"request exceeded its {self.request_timeout_s:g}s deadline",
                retry_after=1,
            ) from None

    # ------------------------------------------------------------------
    # responses

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "application/json",
        retry_after: Optional[int] = None,
    ) -> None:
        data = body.encode("utf8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
        )
        if retry_after is not None:
            head += f"Retry-After: {retry_after}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    async def _respond_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        body = (
            json.dumps(
                {"error": {"code": _ERROR_CODES.get(status, "internal"), "message": message}}
            )
            + "\n"
        )
        await self._respond(writer, status, body, retry_after=retry_after)


async def run_http_daemon(
    service: ReproService,
    host: str = "127.0.0.1",
    port: int = 8337,
    ready=None,
    install_signal_handlers: bool = True,
    max_inflight: int = 0,
    request_timeout_s: Optional[float] = None,
    header_timeout_s: float = 30.0,
) -> ReproHTTPServer:
    """Start the HTTP daemon and block until it has fully drained.

    ``ready(server)`` is called once the listener is bound (the CLI
    prints the resolved address; tests capture the ephemeral port).
    """
    server = ReproHTTPServer(
        service,
        host,
        port,
        max_inflight=max_inflight,
        request_timeout_s=request_timeout_s,
        header_timeout_s=header_timeout_s,
    )
    await server.start()
    if ready is not None:
        ready(server)
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: loop.create_task(server.shutdown())
                )
            except (NotImplementedError, RuntimeError):
                break  # non-POSIX loop; Ctrl-C still raises KeyboardInterrupt
    await server.serve_until_shutdown()
    return server
