"""JSONL-over-stdio front end for the diff daemon.

The embedding-friendly transport: an editor or build tool spawns
``python -m repro serve --stdio`` and speaks one JSON object per line::

    -> {"id": 1, "op": "put_tree", "source": "x = 1\\n"}
    <- {"id": 1, "ok": true, "result": {"fingerprint": "...", ...}}
    -> {"id": 2, "op": "diff", "before": "<fp>", "after": "<fp>"}
    <- {"id": 2, "ok": true, "result": {"edits": 2, "script": [...], ...}}

Operations are exactly :class:`~repro.server.service.ReproService`'s
table (``put_tree``, ``list_trees``, ``diff``, ``apply``, ``lint``,
``verify``, ``merge``, ``health``) plus the transport-level
``shutdown``.  Failures come back in-band: ``{"id": ..., "ok": false,
"error": {"code": ..., "message": ...}}`` — a malformed line gets an
``id: null`` error response rather than killing the session.

Requests are handled concurrently (each line spawns a task; responses
are interleaved in completion order, which is why every request carries
an ``id``).  EOF on stdin or a ``shutdown`` request drains in-flight
work and exits — same semantics as the HTTP front end's ``/shutdown``.
"""

from __future__ import annotations

import asyncio
import errno
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional, TextIO

from repro.observability import OBS, metrics as _metrics

from .service import ReproService, ServiceError


class ReproStdioServer:
    """One JSONL session over a pair of text streams."""

    def __init__(
        self,
        service: ReproService,
        stdin: Optional[TextIO] = None,
        stdout: Optional[TextIO] = None,
    ) -> None:
        self.service = service
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        workers = service.pool.workers if service.pool is not None else 0
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, workers * 2), thread_name_prefix="repro-stdio"
        )
        self._write_lock = asyncio.Lock()
        self._inflight: set[asyncio.Task] = set()
        self._closing = False
        #: responses dropped because the peer closed its read end
        self.broken_pipes = 0

    async def run(self) -> None:
        """Serve until EOF or a ``shutdown`` request, then drain."""
        loop = asyncio.get_running_loop()
        while not self._closing:
            line = await loop.run_in_executor(None, self.stdin.readline)
            if not line:
                break  # EOF: client closed the pipe
            line = line.strip()
            if not line:
                continue
            task = loop.create_task(self._serve_line(line))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        if self._inflight:
            await asyncio.wait(set(self._inflight))
        self._executor.shutdown(wait=True)
        self.service.close()

    async def _serve_line(self, line: str) -> None:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            await self._write(
                {
                    "id": None,
                    "ok": False,
                    "error": {"code": "bad_request", "message": f"invalid JSON: {exc}"},
                }
            )
            return
        if not isinstance(request, dict):
            await self._write(
                {
                    "id": None,
                    "ok": False,
                    "error": {
                        "code": "bad_request",
                        "message": "each line must be a JSON object",
                    },
                }
            )
            return
        rid = request.get("id")
        op = request.get("op")
        if op == "shutdown":
            self._closing = True
            await self._write({"id": rid, "ok": True, "result": {"draining": True}})
            return
        params = {k: v for k, v in request.items() if k not in ("id", "op")}
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, self.service.handle, str(op), params
            )
        except ServiceError as exc:
            await self._write({"id": rid, "ok": False, "error": exc.as_dict()})
            return
        await self._write({"id": rid, "ok": True, "result": result})

    async def _write(self, response: dict[str, Any]) -> None:
        text = json.dumps(response, sort_keys=True) + "\n"
        async with self._write_lock:
            try:
                self.stdout.write(text)
                self.stdout.flush()
            except (BrokenPipeError, ConnectionResetError) as exc:
                self._note_broken_pipe(response, exc)
            except OSError as exc:
                if exc.errno != errno.EPIPE:
                    raise
                self._note_broken_pipe(response, exc)

    def _note_broken_pipe(self, response: dict[str, Any], exc: OSError) -> None:
        """The peer closed its read end mid-response: drop this response,
        count it, and keep serving other in-flight ids — one impatient
        client must not take down the daemon loop."""
        self.broken_pipes += 1
        if OBS.enabled:
            _metrics().counter("repro.server.stdio.broken_pipe").inc()
        print(
            f"repro serve: dropped response id={response.get('id')!r}: {exc}",
            file=sys.stderr,
        )


async def run_stdio_daemon(
    service: ReproService,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> None:
    await ReproStdioServer(service, stdin, stdout).run()
