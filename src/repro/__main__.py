"""Command line interface: structural diffing of Python files.

Usage::

    python -m repro diff before.py after.py            # print the script
    python -m repro diff before.py after.py --json     # machine-readable
    python -m repro diff before.py after.py --stats    # sizes & timing
    python -m repro diff before.py after.py --metrics  # instrument the run
    python -m repro stats before.py after.py           # pass-by-pass report
    python -m repro apply before.py script.json        # patch and unparse
    python -m repro compare before.py after.py         # all tools side by side

``--metrics`` enables the observability layer around the diff and dumps
the registry to stderr (``--metrics=json`` / ``--metrics=prom`` select
the format); the ``stats`` subcommand replays a file pair several times
and prints the per-pass timing and counter report (``--out`` writes the
snapshot JSON, which CI uploads as a build artifact).

The CLI exercises the same public API the examples use; it exists so the
tool is usable on real files without writing a driver script.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import observability as obs
from repro.adapters import ast_node_count, parse_python, tnode_to_gumtree, unparse_python
from repro.core import assert_well_typed, diff, tnode_to_mtree
from repro.core.serialize import script_from_json, script_to_json


def _read(path: str) -> str:
    with open(path, encoding="utf8") as fh:
        return fh.read()


def _emit_metrics(snap: dict, mode: str, stream) -> None:
    """Render a registry snapshot in the requested format."""
    if mode == "json":
        print(json.dumps(snap, indent=2, sort_keys=True), file=stream)
    elif mode == "prom":
        print(obs.prometheus_text(snap), end="", file=stream)
    else:
        print(obs.render_report(snap), file=stream)


def cmd_diff(args: argparse.Namespace) -> int:
    # canonical URIs (pre-order positions) make the script meaningful to a
    # separate `apply` process that re-parses the before-file
    t0 = time.perf_counter()
    src = parse_python(_read(args.before), args.before).with_canonical_uris()
    dst = parse_python(_read(args.after), args.after)
    parse_ms = (time.perf_counter() - t0) * 1000
    from repro.core import URIGen

    if args.metrics:
        obs.enable()
    try:
        t0 = time.perf_counter()
        script, _ = diff(src, dst, urigen=URIGen(start=src.size + 1))
        diff_ms = (time.perf_counter() - t0) * 1000
    finally:
        if args.metrics:
            obs.disable()
    t0 = time.perf_counter()
    assert_well_typed(src.sigs, script)
    typecheck_ms = (time.perf_counter() - t0) * 1000
    if args.json:
        print(script_to_json(script, indent=2))
    elif args.explain:
        from repro.adapters.explain import explain

        print(explain(src, script))
    else:
        for edit in script:
            print(edit)
    if args.stats:
        nodes = ast_node_count(src) + ast_node_count(dst)
        # the rate covers the diff alone; parse and typecheck are reported
        # separately (and a trivial input may round the timer to zero)
        rate = f"{nodes / diff_ms:.0f}" if diff_ms > 0 else "inf"
        print(
            f"-- {len(script)} edits, {nodes} nodes; "
            f"parse {parse_ms:.1f} ms, diff {diff_ms:.1f} ms "
            f"({rate} nodes/ms), typecheck {typecheck_ms:.1f} ms",
            file=sys.stderr,
        )
    if args.metrics:
        _emit_metrics(obs.snapshot(), args.metrics, sys.stderr)
        obs.reset()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Replay a file pair under full instrumentation and report per-pass
    metrics (the explanatory counterpart of ``diff --stats``)."""
    from repro.core import URIGen, apply_script

    before_text = _read(args.before)
    after_text = _read(args.after)
    obs.reset()
    obs.enable()
    try:
        script = None
        src = None
        for _ in range(max(1, args.rounds)):
            # reparse per round: each replay rebuilds its trees, so the
            # span histograms aggregate over identical, independent runs
            src = parse_python(before_text, args.before).with_canonical_uris()
            dst = parse_python(after_text, args.after)
            script, _ = diff(src, dst, urigen=URIGen(start=src.size + 1))
        # drive the patch path too, so edit-kind counters are populated
        apply_script(src, script)
        snap = obs.snapshot()
    finally:
        obs.disable()
        obs.reset()
    if args.out:
        with open(args.out, "w", encoding="utf8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
    mode = "json" if args.json else "prom" if args.prom else "text"
    if mode == "text":
        title = (
            f"{args.before} -> {args.after}: "
            f"{max(1, args.rounds)} instrumented replay(s)"
        )
        print(obs.render_report(snap, title))
    else:
        _emit_metrics(snap, mode, sys.stdout)
    return 0


def cmd_apply(args: argparse.Namespace) -> int:
    src = parse_python(_read(args.before), args.before).with_canonical_uris()
    script = script_from_json(_read(args.script))
    mtree = tnode_to_mtree(src)
    mtree.patch(script)
    # rebuild a TNode from the patched MTree to unparse it
    from repro.adapters.pyast import python_grammar

    g = python_grammar()
    rebuilt = g.grammar.parse_tuple(mtree.to_tuple())
    print(unparse_python(rebuilt))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines.gumtree import ChawatheScriptGenerator, match
    from repro.baselines.hdiff import hdiff, patch_size

    src = parse_python(_read(args.before), args.before)
    dst = parse_python(_read(args.after), args.after)
    nodes = ast_node_count(src) + ast_node_count(dst)

    t0 = time.perf_counter()
    script, _ = diff(src, dst)
    td_ms = (time.perf_counter() - t0) * 1000

    g1, g2 = tnode_to_gumtree(src), tnode_to_gumtree(dst)
    t0 = time.perf_counter()
    ops = ChawatheScriptGenerator(g1, g2, match(g1, g2)).generate()
    gt_ms = (time.perf_counter() - t0) * 1000

    t0 = time.perf_counter()
    patch = hdiff(src, dst)
    hd_ms = (time.perf_counter() - t0) * 1000

    print(f"{'tool':<10} {'patch size':>10} {'time ms':>9} {'nodes/ms':>9}")
    for name, size, ms in (
        ("truediff", len(script), td_ms),
        ("gumtree", len(ops), gt_ms),
        ("hdiff", patch_size(patch), hd_ms),
    ):
        print(f"{name:<10} {size:>10} {ms:>9.1f} {nodes / ms:>9.0f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="truediff structural diffing for Python files"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_diff = sub.add_parser("diff", help="diff two Python files")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.add_argument("--json", action="store_true", help="emit truechange JSON")
    p_diff.add_argument(
        "--explain", action="store_true", help="print a human-readable change summary"
    )
    p_diff.add_argument("--stats", action="store_true", help="print size/timing to stderr")
    p_diff.add_argument(
        "--metrics",
        nargs="?",
        const="text",
        default=None,
        choices=["text", "json", "prom"],
        help="instrument the diff and dump metrics to stderr "
        "(optionally as json or Prometheus text)",
    )
    p_diff.set_defaults(func=cmd_diff)

    p_stats = sub.add_parser(
        "stats", help="replay a file pair under instrumentation, report per-pass metrics"
    )
    p_stats.add_argument("before")
    p_stats.add_argument("after")
    p_stats.add_argument(
        "--rounds", type=int, default=3, help="instrumented replays (default 3)"
    )
    fmt = p_stats.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", help="print the snapshot as JSON")
    fmt.add_argument(
        "--prom", action="store_true", help="print the snapshot in Prometheus text format"
    )
    p_stats.add_argument(
        "--out", default=None, metavar="PATH", help="also write the snapshot JSON to PATH"
    )
    p_stats.set_defaults(func=cmd_stats)

    p_apply = sub.add_parser("apply", help="apply a truechange JSON script")
    p_apply.add_argument("before")
    p_apply.add_argument("script")
    p_apply.set_defaults(func=cmd_apply)

    p_cmp = sub.add_parser("compare", help="compare all diff tools on a file pair")
    p_cmp.add_argument("before")
    p_cmp.add_argument("after")
    p_cmp.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
