"""Command line interface: structural diffing of Python files.

Usage::

    python -m repro diff before.py after.py            # print the script
    python -m repro diff before.py after.py --json     # machine-readable
    python -m repro diff before.py after.py --stats    # sizes & timing
    python -m repro diff before.py after.py --metrics  # instrument the run
    python -m repro stats before.py after.py           # pass-by-pass report
    python -m repro apply before.py script.json        # patch and unparse
    python -m repro apply before.py script.json --atomic --verify
    python -m repro lint script.json                   # static analysis, no tree
    python -m repro lint script.json --format sarif --out lint.sarif
    python -m repro lint script.json --fix             # minimize in place
    python -m repro race a.json b.json c.json          # interference + schedule
    python -m repro race a.json b.json --format sarif --out race.sarif
    python -m repro verify file.py                     # tree integrity check
    python -m repro verify file.py --script script.json
    python -m repro compare before.py after.py         # all tools side by side
    python -m repro batch old/ new/ --workers 4 --out results.jsonl
    python -m repro batch old/ new/ --fallback-replace # degrade, don't fail
    python -m repro diff before.py after.py --trace trace.json
    python -m repro batch old/ new/ --trace trace.json --sample 1/8
    python -m repro trace trace.json                   # causal timeline view
    python -m repro serve --port 8337 --workers 2      # diff-as-a-service daemon
    python -m repro serve --stdio                      # JSONL-over-stdio front end
    python -m repro diff before.py after.py --server http://127.0.0.1:8337

``--metrics`` enables the observability layer around the diff and dumps
the registry to stderr (``--metrics=json`` / ``--metrics=prom`` select
the format); the ``stats`` subcommand replays a file pair several times
and prints the per-pass timing and counter report (``--out`` writes the
snapshot JSON, which CI uploads as a build artifact).

``--trace PATH`` records the run as a causal span tree and exports it —
by default in the Chrome trace-event format (load it at
https://ui.perfetto.dev), or OTLP-shaped JSON with ``--trace-format
otlp``.  For ``batch``, spans from the driver and every pool worker land
in one trace (worker telemetry is spilled per process and merged), and
``--sample 1/N`` head-samples the per-pair subtrees.  ``repro trace``
renders any exported trace back as a text timeline or converts between
formats.

The CLI exercises the same public API the examples use; it exists so the
tool is usable on real files without writing a driver script.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import observability as obs
from repro.adapters import ast_node_count, parse_python, tnode_to_gumtree, unparse_python
from repro.core import EditTypeError, PatchError, diff, tnode_to_mtree
from repro.core.serialize import SerializationError, script_from_json, script_to_json


class CLIError(Exception):
    """A user-facing input problem (unreadable or unparseable file).

    Rendered by :func:`main` as a one-line ``repro: <file>: <error>``
    diagnostic on stderr with exit status 2 — never a traceback.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")


def _read(path: str) -> str:
    try:
        with open(path, encoding="utf8") as fh:
            return fh.read()
    except OSError as exc:
        raise CLIError(path, exc.strerror or str(exc)) from None
    except UnicodeDecodeError as exc:
        raise CLIError(path, f"not valid UTF-8 ({exc.reason})") from None


def _parse_text(text: str, path: str):
    try:
        return parse_python(text, path)
    except SyntaxError as exc:
        detail = exc.msg or "invalid syntax"
        where = f" (line {exc.lineno})" if exc.lineno else ""
        raise CLIError(path, f"{detail}{where}") from None
    except ValueError as exc:  # e.g. source containing null bytes
        raise CLIError(path, str(exc)) from None


def _parse_file(path: str):
    return _parse_text(_read(path), path)


def _emit_metrics(snap: dict, mode: str, stream) -> None:
    """Render a registry snapshot in the requested format."""
    if mode == "json":
        print(json.dumps(snap, indent=2, sort_keys=True), file=stream)
    elif mode == "prom":
        print(obs.prometheus_text(snap), end="", file=stream)
    else:
        print(obs.render_report(snap), file=stream)


def _cmd_diff_via_server(args: argparse.Namespace) -> int:
    """Client mode: route the diff through a running daemon.

    Sources are uploaded once (content-addressed: a re-upload is a
    cache hit) and the diff is requested by fingerprint; the printed
    script is byte-identical to the local code path.
    """
    from repro.server import ClientError, ServerClient

    if args.explain or args.metrics or args.trace:
        raise CLIError(
            "--server", "client mode supports --json and --stats only"
        )
    before_text = _read(args.before)
    after_text = _read(args.after)
    client = ServerClient(args.server)
    try:
        before = client.put_tree(before_text, args.before)
        after = client.put_tree(after_text, args.after)
        if args.json:
            raw = client.diff_raw(before["fingerprint"], after["fingerprint"])
            sys.stdout.write(raw.decode("utf8"))
            result = None
        else:
            result = client.diff(before["fingerprint"], after["fingerprint"])
            script = script_from_json(result["script_json"])
            for edit in script:
                print(edit)
    except ClientError as exc:
        raise CLIError(args.server, exc.message) from None
    if args.stats and result is not None:
        nodes = result["src_nodes"] + result["dst_nodes"]
        print(
            f"-- {result['edits']} edits, {nodes} nodes; "
            f"server diff {result['diff_ms']:.1f} ms "
            f"(cached: before={str(result['cached']['before']).lower()}, "
            f"after={str(result['cached']['after']).lower()})",
            file=sys.stderr,
        )
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    if args.server:
        return _cmd_diff_via_server(args)
    # canonical URIs (pre-order positions) make the script meaningful to a
    # separate `apply` process that re-parses the before-file
    t0 = time.perf_counter()
    src = _parse_file(args.before).with_canonical_uris()
    dst = _parse_file(args.after)
    parse_ms = (time.perf_counter() - t0) * 1000
    from repro.core import URIGen

    if args.metrics:
        obs.enable()
    if args.trace:
        obs.reset_tracing()
        try:
            obs.enable_tracing(sample=args.sample)
        except ValueError as exc:
            raise CLIError("--sample", str(exc)) from None
    from repro.core import DiffOptions, validate_script

    try:
        t0 = time.perf_counter()
        # validation runs (and is timed) separately below
        script, _ = diff(
            src,
            dst,
            DiffOptions(typecheck="none"),
            urigen=URIGen(start=src.size + 1),
        )
        diff_ms = (time.perf_counter() - t0) * 1000
    finally:
        if args.metrics and not args.trace:
            obs.disable()
    t0 = time.perf_counter()
    validate_script(script, src.sigs, args.typecheck)
    typecheck_ms = (time.perf_counter() - t0) * 1000
    if args.trace:
        obs.disable_tracing()
        obs.disable()
        spans = obs.take_spans()
        obs.write_trace(args.trace, spans, args.trace_format)
        print(
            f"repro: trace: {len(spans)} span(s) -> {args.trace}",
            file=sys.stderr,
        )
    if args.json:
        print(script_to_json(script, indent=2))
    elif args.explain:
        from repro.adapters.explain import explain

        print(explain(src, script))
    else:
        for edit in script:
            print(edit)
    if args.stats:
        nodes = ast_node_count(src) + ast_node_count(dst)
        # the rate covers the diff alone; parse and typecheck are reported
        # separately (and a trivial input may round the timer to zero)
        rate = f"{nodes / diff_ms:.0f}" if diff_ms > 0 else "inf"
        print(
            f"-- {len(script)} edits, {nodes} nodes; "
            f"parse {parse_ms:.1f} ms, diff {diff_ms:.1f} ms "
            f"({rate} nodes/ms), "
            f"validate[{args.typecheck}] {typecheck_ms:.1f} ms",
            file=sys.stderr,
        )
    if args.metrics:
        _emit_metrics(obs.snapshot(), args.metrics, sys.stderr)
        obs.reset()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Replay a file pair under full instrumentation and report per-pass
    metrics (the explanatory counterpart of ``diff --stats``)."""
    from repro.core import URIGen, apply_script

    before_text = _read(args.before)
    after_text = _read(args.after)
    obs.reset()
    obs.enable()
    try:
        script = None
        src = None
        for _ in range(max(1, args.rounds)):
            # reparse per round: each replay rebuilds its trees, so the
            # span histograms aggregate over identical, independent runs
            src = _parse_text(before_text, args.before).with_canonical_uris()
            dst = _parse_text(after_text, args.after)
            script, _ = diff(src, dst, urigen=URIGen(start=src.size + 1))
        # drive the patch path too, so edit-kind counters are populated
        apply_script(src, script)
        snap = obs.snapshot()
    finally:
        obs.disable()
        obs.reset()
    if args.out:
        with open(args.out, "w", encoding="utf8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
    mode = "json" if args.json else "prom" if args.prom else "text"
    if mode == "text":
        title = (
            f"{args.before} -> {args.after}: "
            f"{max(1, args.rounds)} instrumented replay(s)"
        )
        print(obs.render_report(snap, title))
    else:
        _emit_metrics(snap, mode, sys.stdout)
    return 0


def cmd_apply(args: argparse.Namespace) -> int:
    from repro.core import PatchError

    src = _parse_file(args.before).with_canonical_uris()
    try:
        script = script_from_json(_read(args.script))
    except SerializationError as exc:
        raise CLIError(args.script, str(exc)) from None
    mtree = tnode_to_mtree(src)
    try:
        if args.atomic or args.verify:
            mtree.patch(script, atomic=True, sigs=src.sigs, verify=args.verify)
        else:
            mtree.patch(script)
    except PatchError as exc:
        print(f"repro: apply: {exc}", file=sys.stderr)
        return 1
    # rebuild a TNode from the patched MTree to unparse it
    from repro.adapters.pyast import python_grammar

    g = python_grammar()
    rebuilt = g.grammar.parse_tuple(mtree.to_tuple())
    print(unparse_python(rebuilt))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically analyze a truechange JSON script — no tree in hand.

    Runs the truelint analyzer (linear typing against Σ, Definition 3.1
    boundary conditions, redundancy lints) and renders the report as
    compiler-style text, JSON, or SARIF.  ``--fix`` additionally applies
    the semantics-preserving rewrites and writes the minimized script
    back to the input file.

    Exit status: 0 for a well-typed script (warnings allowed), 1 if any
    error-severity finding remains, 2 for unusable inputs.
    """
    from repro.analysis import lint_script, minimize, render_json, render_sarif, render_text

    if args.sigs == "python":
        from repro.adapters.pyast import python_grammar

        sigs = python_grammar().grammar.sigs
    else:
        sigs = _parse_file(args.sigs).sigs

    try:
        script = script_from_json(_read(args.script))
    except SerializationError as exc:
        raise CLIError(args.script, str(exc)) from None

    if args.fix:
        result = minimize(script)
        if result.changed:
            with open(args.script, "w", encoding="utf8") as fh:
                fh.write(script_to_json(result.script, indent=2))
                fh.write("\n")
            print(
                f"repro: lint: applied {len(result.applied)} fix(es) in "
                f"{result.rounds} round(s): {result.original_edits} -> "
                f"{result.minimized_edits} edits",
                file=sys.stderr,
            )
            script = result.script

    report = lint_script(script, sigs, uri=args.script)
    rendered = {
        "text": lambda: render_text(report),
        "json": lambda: render_json(report),
        "sarif": lambda: render_sarif([report]),
    }[args.format]()
    if args.out:
        with open(args.out, "w", encoding="utf8") as fh:
            fh.write(rendered)
            fh.write("\n")
    else:
        print(rendered)
    return 0 if report.ok else 1


def cmd_race(args: argparse.Namespace) -> int:
    """Statically analyze a set of truechange scripts for interference.

    Runs the truerace effect system over every script, builds the
    pairwise interference graph (stable ``TR0xx`` codes), and prints the
    conflict report plus the greedy-colored wave schedule.  By default
    the scripts are modeled as raw concurrent applications, where
    colliding fresh URIs are real conflicts; ``--assume-renamed`` asks
    the question under a renaming discipline instead (the contract the
    server's ``/apply-batch`` establishes before scheduling).

    Exit status: 0 if every pair is independent (the whole set is one
    wave), 1 if any interference was found, 2 for unusable inputs.
    """
    from repro.analysis.race import (
        RaceReport,
        render_race_json,
        render_race_sarif,
        render_race_text,
        schedule,
    )

    scripts = []
    for path in args.scripts:
        try:
            scripts.append(script_from_json(_read(path)))
        except SerializationError as exc:
            raise CLIError(path, str(exc)) from None
    sch = schedule(scripts, assume_renamed=args.assume_renamed)
    report = RaceReport(
        sch,
        labels=list(args.scripts),
        assume_renamed=args.assume_renamed,
        uri=args.uri,
    )
    rendered = {
        "text": lambda: render_race_text(report),
        "json": lambda: render_race_json(report),
        "sarif": lambda: render_race_sarif([report]),
    }[args.format]()
    if args.out:
        with open(args.out, "w", encoding="utf8") as fh:
            fh.write(rendered)
            fh.write("\n")
    else:
        print(rendered)
    return 0 if report.independent else 1


def cmd_verify(args: argparse.Namespace) -> int:
    """Check tree integrity, optionally after an atomic patch.

    Exit status: 0 if the tree verifies, 1 on violations or a rejected
    patch, 2 for unusable inputs.
    """
    from repro.core import PatchError
    from repro.robustness import check_tree

    src = _parse_file(args.file).with_canonical_uris()
    mtree = tnode_to_mtree(src)
    if args.script:
        try:
            script = script_from_json(_read(args.script))
        except SerializationError as exc:
            raise CLIError(args.script, str(exc)) from None
        try:
            mtree.patch(script, atomic=True, sigs=src.sigs)
        except PatchError as exc:
            print(f"repro: verify: patch rejected: {exc}", file=sys.stderr)
            return 1
    violations = check_tree(mtree, src.sigs, max_violations=args.max_violations)
    for violation in violations:
        print(violation)
    status = f"{len(violations)} violation(s)" if violations else "ok"
    print(
        f"repro: verify: {args.file}: {status} ({mtree.node_count()} nodes)",
        file=sys.stderr,
    )
    return 1 if violations else 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Diff a whole corpus of file pairs in parallel, streaming JSONL rows.

    Exit status: 0 if at least one pair diffed (or the corpus was empty),
    1 if every pair failed, 2 for unusable inputs.
    """
    from repro.batch import BatchConfig, discover_pairs, read_pairs_file, run_batch

    if args.pairs:
        try:
            pairs = read_pairs_file(args.pairs)
        except OSError as exc:
            raise CLIError(args.pairs, exc.strerror or str(exc)) from None
        except ValueError as exc:
            raise CLIError(args.pairs, str(exc)) from None
    else:
        if not args.after_dir:
            raise CLIError(args.before_dir, "missing AFTER_DIR (or use --pairs)")
        try:
            pairs, only_before, only_after = discover_pairs(
                args.before_dir, args.after_dir, args.glob
            )
        except NotADirectoryError as exc:
            raise CLIError(str(exc).split(": ", 1)[-1], "not a directory") from None
        if only_before or only_after:
            print(
                f"repro: batch: skipping {len(only_before)} before-only "
                f"and {len(only_after)} after-only file(s)",
                file=sys.stderr,
            )

    config = BatchConfig(
        workers=args.workers,
        timeout_s=args.timeout if args.timeout > 0 else None,
        retries=args.retries,
        chunksize=args.chunksize,
        fallback_replace=args.fallback_replace,
    )
    collector = None
    spill_ctx = None
    if args.metrics:
        obs.enable()
    if args.trace:
        import tempfile

        obs.reset_tracing()
        try:
            obs.enable_tracing(sample=args.sample)
        except ValueError as exc:
            raise CLIError("--sample", str(exc)) from None
        # spill directory: per-worker telemetry survives worker death
        spill_ctx = tempfile.TemporaryDirectory(prefix="repro-trace-")
        collector = obs.TelemetryCollector(
            trace=True, sample=args.sample, spill_dir=spill_ctx.name
        )

    out_fh = open(args.out, "w", encoding="utf8") if args.out else sys.stdout

    def emit(row: dict) -> None:
        out_fh.write(json.dumps(row, sort_keys=True) + "\n")
        out_fh.flush()

    try:
        summary = run_batch(pairs, config, emit=emit, collector=collector)
    finally:
        if args.out:
            out_fh.close()
        if args.trace:
            obs.disable_tracing()
        if args.metrics:
            _emit_metrics(obs.snapshot(), args.metrics, sys.stderr)
        if args.metrics or args.trace:
            obs.disable()
            obs.reset()
    if collector is not None:
        spans = collector.finish()
        obs.write_trace(args.trace, spans, args.trace_format)
        pids = len({s.get("pid") for s in spans})
        dropped = (
            f", {collector.dropped_spans} dropped" if collector.dropped_spans else ""
        )
        print(
            f"repro: trace: {len(spans)} span(s) from {pids} process(es) "
            f"-> {args.trace}{dropped}",
            file=sys.stderr,
        )
        obs.reset_tracing()
        if spill_ctx is not None:
            spill_ctx.cleanup()
    s = summary.as_dict()
    degraded = f"{s['degraded']} degraded, " if s["degraded"] else ""
    print(
        f"repro: batch: {s['ok']}/{s['pairs']} ok, {degraded}{s['failed']} failed "
        f"({', '.join(f'{k}={v}' for k, v in s['failures_by_kind'].items()) or 'none'}), "
        f"{s['retried']} retried; {s['workers']} worker(s), "
        f"{s['elapsed_s']:.2f}s, {s['pairs_per_sec']:.1f} pairs/s",
        file=sys.stderr,
    )
    if args.summary:
        with open(args.summary, "w", encoding="utf8") as fh:
            json.dump(s, fh, indent=2, sort_keys=True)
            fh.write("\n")
    produced = summary.ok + summary.degraded
    return 1 if summary.pairs > 0 and produced == 0 else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect or convert an exported trace file.

    Reads any format this tool writes (Chrome trace-event JSON, OTLP
    JSON, raw span lists, per-worker spill JSONL) and renders a causal
    text timeline on stdout — or, with ``--out``, re-exports the spans
    in the requested format.

    Exit status: 0 on success, 1 for a readable file with no spans,
    2 for unusable inputs.
    """
    try:
        spans = obs.read_spans(args.file)
    except OSError as exc:
        raise CLIError(args.file, exc.strerror or str(exc)) from None
    except ValueError as exc:
        raise CLIError(args.file, str(exc)) from None
    if args.out:
        obs.write_trace(args.out, spans, args.format)
        print(
            f"repro: trace: {len(spans)} span(s) -> {args.out} ({args.format})",
            file=sys.stderr,
        )
    else:
        print(obs.render_timeline(spans))
    return 0 if spans else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the diff-as-a-service daemon (HTTP or JSONL-over-stdio).

    The daemon parses each uploaded source once into the
    content-addressed tree store and serves fingerprint-addressed
    ``diff``/``apply``/``lint``/``verify``/``merge`` requests against
    the cached trees.  Metrics are always on (``/metrics`` is part of
    the product); each request is recorded as its own causal trace,
    drainable at ``/trace``.  SIGINT/SIGTERM (or ``POST /shutdown``)
    stop the listener and drain in-flight requests before exiting.
    """
    import asyncio

    from repro.server import ReproService, TreeStore, run_http_daemon, run_stdio_daemon

    if args.workers < 0:
        raise CLIError("--workers", f"must be >= 0, got {args.workers}")
    obs.reset_tracing()
    obs.enable()
    try:
        obs.enable_tracing(sample=args.sample)
        collector = obs.TelemetryCollector(trace=True, sample=args.sample)
    except ValueError as exc:
        raise CLIError("--sample", str(exc)) from None
    if args.data_dir:
        from repro.server.durable import DataDirLocked, DurableTreeStore

        try:
            store = DurableTreeStore(args.data_dir, max_trees=args.store_max)
        except DataDirLocked as exc:
            raise CLIError(args.data_dir, str(exc)) from None
        except OSError as exc:
            raise CLIError(args.data_dir, f"cannot open data dir: {exc}") from None
        r = store.recovery
        print(
            f"repro: serve: recovered {r.snapshots_loaded} tree(s) and "
            f"{r.applies_replayed} journaled apply(s) from {args.data_dir}"
            + (f" ({len(r.problems)} damaged record(s) skipped)" if r.problems else ""),
            file=sys.stderr,
            flush=True,
        )
    else:
        store = TreeStore(max_trees=args.store_max)
    service = ReproService(
        store,
        workers=args.workers,
        collector=collector,
        op_timeout_s=args.request_timeout or None,
    )
    try:
        if args.stdio:
            asyncio.run(run_stdio_daemon(service))
        else:

            def ready(server) -> None:
                print(
                    f"repro: serve: listening on http://{server.host}:{server.port} "
                    f"({args.workers or 'no'} diff worker(s), "
                    f"store capacity {args.store_max})",
                    file=sys.stderr,
                    flush=True,
                )

            asyncio.run(
                run_http_daemon(
                    service,
                    args.host,
                    args.port,
                    ready,
                    max_inflight=args.max_inflight,
                    request_timeout_s=args.request_timeout or None,
                    header_timeout_s=args.header_timeout,
                )
            )
    except KeyboardInterrupt:
        pass  # drain already handled by the signal path where available
    finally:
        obs.disable_tracing()
        obs.disable()
        obs.reset()
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines.gumtree import ChawatheScriptGenerator, match
    from repro.baselines.hdiff import hdiff, patch_size

    src = _parse_file(args.before)
    dst = _parse_file(args.after)
    nodes = ast_node_count(src) + ast_node_count(dst)

    t0 = time.perf_counter()
    script, _ = diff(src, dst)
    td_ms = (time.perf_counter() - t0) * 1000

    g1, g2 = tnode_to_gumtree(src), tnode_to_gumtree(dst)
    t0 = time.perf_counter()
    ops = ChawatheScriptGenerator(g1, g2, match(g1, g2)).generate()
    gt_ms = (time.perf_counter() - t0) * 1000

    t0 = time.perf_counter()
    patch = hdiff(src, dst)
    hd_ms = (time.perf_counter() - t0) * 1000

    print(f"{'tool':<10} {'patch size':>10} {'time ms':>9} {'nodes/ms':>9}")
    for name, size, ms in (
        ("truediff", len(script), td_ms),
        ("gumtree", len(ops), gt_ms),
        ("hdiff", patch_size(patch), hd_ms),
    ):
        print(f"{name:<10} {size:>10} {ms:>9.1f} {nodes / ms:>9.0f}")
    return 0


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a causal span trace of the run and write it to PATH",
    )
    parser.add_argument(
        "--trace-format",
        default="chrome",
        choices=["chrome", "otlp", "timeline"],
        help="trace export format (default chrome; view at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--sample",
        default=None,
        metavar="1/N",
        help="head-sampling rate for trace subtrees (default: OBS_SAMPLE "
        "from the environment, else record everything)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="truediff structural diffing for Python files"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_diff = sub.add_parser("diff", help="diff two Python files")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.add_argument("--json", action="store_true", help="emit truechange JSON")
    p_diff.add_argument(
        "--explain", action="store_true", help="print a human-readable change summary"
    )
    p_diff.add_argument("--stats", action="store_true", help="print size/timing to stderr")
    p_diff.add_argument(
        "--typecheck",
        choices=["static", "dynamic", "none"],
        default="static",
        help="how to validate the emitted script: 'static' pre-flights it "
        "against the closed linear state (default), 'dynamic' replays the "
        "full truechange type system, 'none' skips validation",
    )
    p_diff.add_argument(
        "--metrics",
        nargs="?",
        const="text",
        default=None,
        choices=["text", "json", "prom"],
        help="instrument the diff and dump metrics to stderr "
        "(optionally as json or Prometheus text)",
    )
    _add_trace_args(p_diff)
    p_diff.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="route the diff through a running `repro serve` daemon "
        "(uploads the sources, diffs by fingerprint)",
    )
    p_diff.set_defaults(func=cmd_diff)

    p_stats = sub.add_parser(
        "stats", help="replay a file pair under instrumentation, report per-pass metrics"
    )
    p_stats.add_argument("before")
    p_stats.add_argument("after")
    p_stats.add_argument(
        "--rounds", type=int, default=3, help="instrumented replays (default 3)"
    )
    fmt = p_stats.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", help="print the snapshot as JSON")
    fmt.add_argument(
        "--prom", action="store_true", help="print the snapshot in Prometheus text format"
    )
    p_stats.add_argument(
        "--out", default=None, metavar="PATH", help="also write the snapshot JSON to PATH"
    )
    p_stats.set_defaults(func=cmd_stats)

    p_apply = sub.add_parser("apply", help="apply a truechange JSON script")
    p_apply.add_argument("before")
    p_apply.add_argument("script")
    p_apply.add_argument(
        "--atomic",
        action="store_true",
        help="pre-flight typecheck the script and roll back on any failure",
    )
    p_apply.add_argument(
        "--verify",
        action="store_true",
        help="verify tree integrity after patching (implies --atomic)",
    )
    p_apply.set_defaults(func=cmd_apply)

    p_lint = sub.add_parser(
        "lint", help="statically analyze a truechange JSON script (no tree needed)"
    )
    p_lint.add_argument("script", help="truechange JSON script to analyze")
    p_lint.add_argument(
        "--sigs",
        default="python",
        metavar="PYTHON|FILE",
        help="signatures to check against: 'python' (default) for the "
        "built-in Python grammar, or a Python source file to derive them from",
    )
    p_lint.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif"],
        help="report format (default text)",
    )
    p_lint.add_argument(
        "--fix",
        action="store_true",
        help="apply the semantics-preserving rewrites and write the "
        "minimized script back to the input file",
    )
    p_lint.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_race = sub.add_parser(
        "race",
        help="statically analyze truechange scripts for interference "
        "(conflict report + wave schedule)",
    )
    p_race.add_argument(
        "scripts", nargs="+", metavar="SCRIPT",
        help="truechange JSON scripts, in batch order",
    )
    p_race.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif"],
        help="report format (default text)",
    )
    p_race.add_argument(
        "--assume-renamed",
        action="store_true",
        help="suppress the fresh-URI rules (TR005/TR006): analyze under "
        "a renaming discipline, as the merge driver and /apply-batch do",
    )
    p_race.add_argument(
        "--uri",
        default="<scripts>",
        metavar="LABEL",
        help="artifact label used in the report (default '<scripts>')",
    )
    p_race.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    p_race.set_defaults(func=cmd_race)

    p_verify = sub.add_parser(
        "verify", help="check the structural integrity of a parsed tree"
    )
    p_verify.add_argument("file")
    p_verify.add_argument(
        "--script",
        default=None,
        metavar="PATH",
        help="atomically apply this truechange JSON script before verifying",
    )
    p_verify.add_argument(
        "--max-violations",
        type=int,
        default=100,
        metavar="N",
        help="stop reporting after N violations (default 100)",
    )
    p_verify.set_defaults(func=cmd_verify)

    p_batch = sub.add_parser(
        "batch", help="diff a corpus of file pairs in parallel, emitting JSONL rows"
    )
    p_batch.add_argument("before_dir", metavar="BEFORE_DIR")
    p_batch.add_argument("after_dir", metavar="AFTER_DIR", nargs="?", default=None)
    p_batch.add_argument(
        "--pairs",
        default=None,
        metavar="FILE",
        help="explicit pair list (before<TAB>after per line) instead of directories",
    )
    p_batch.add_argument(
        "--glob", default="*.py", help="filename pattern for directory discovery"
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = all CPUs, 1 = serial in-process)",
    )
    p_batch.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-pair wall-clock budget in seconds (0 disables)",
    )
    p_batch.add_argument(
        "--retries", type=int, default=1, help="re-submissions of timeout/crash failures"
    )
    p_batch.add_argument(
        "--chunksize", type=int, default=8, help="pairs per pool task (amortizes pickling)"
    )
    p_batch.add_argument(
        "--fallback-replace",
        action="store_true",
        help="degrade internal diff errors to verified replace-root scripts "
        "instead of failure rows",
    )
    p_batch.add_argument(
        "--out", default=None, metavar="PATH", help="write JSONL rows to PATH (default stdout)"
    )
    p_batch.add_argument(
        "--summary", default=None, metavar="PATH", help="write the summary JSON to PATH"
    )
    p_batch.add_argument(
        "--metrics",
        nargs="?",
        const="text",
        default=None,
        choices=["text", "json", "prom"],
        help="instrument the run and dump batch counters to stderr",
    )
    _add_trace_args(p_batch)
    p_batch.set_defaults(func=cmd_batch)

    p_trace = sub.add_parser(
        "trace", help="render or convert an exported trace file"
    )
    p_trace.add_argument("file", help="trace file (chrome/OTLP/raw/spill JSONL)")
    p_trace.add_argument(
        "--format",
        default="chrome",
        choices=["chrome", "otlp", "timeline"],
        help="output format for --out (default chrome)",
    )
    p_trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="convert to PATH instead of printing the text timeline",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve", help="run the diff-as-a-service daemon over a content-addressed tree store"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p_serve.add_argument(
        "--port", type=int, default=8337, help="TCP port (default 8337; 0 = ephemeral)"
    )
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve JSONL requests over stdin/stdout instead of HTTP",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="diff worker processes (0 = compute inline in the daemon)",
    )
    p_serve.add_argument(
        "--store-max",
        type=int,
        default=1024,
        metavar="N",
        help="maximum cached trees before LRU eviction (default 1024)",
    )
    p_serve.add_argument(
        "--sample",
        default=None,
        metavar="1/N",
        help="head-sampling rate for per-request traces (default: OBS_SAMPLE "
        "from the environment, else record everything)",
    )
    p_serve.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="durable store directory: snapshots + write-ahead journal; "
        "the daemon recovers its trees from DIR on startup",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        metavar="N",
        help="shed POST operations beyond N concurrently executing "
        "(503 + Retry-After; default 0 = unbounded)",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-operation deadline; a wedged diff worker is killed and "
        "the request answered 503 (default 0 = no deadline)",
    )
    p_serve.add_argument(
        "--header-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long a client may take to send its request head, and "
        "how long its body may stall without progress, before a 408 "
        "(default 30)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_cmp = sub.add_parser("compare", help="compare all diff tools on a file pair")
    p_cmp.add_argument("before")
    p_cmp.add_argument("after")
    p_cmp.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except (EditTypeError, PatchError) as exc:
        # the rendered message carries the stable TLxxx code and the
        # failing primitive edit index — the same span `repro lint`
        # reports (PatchError covers static pre-flight rejections)
        print(f"repro: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
