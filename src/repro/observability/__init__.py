"""Zero-overhead-when-disabled metrics and span tracing.

The evaluation of Section 6 needs quantities the algorithm does not
return: per-pass costs of truediff's four passes, share/equivalence
statistics, node reuse, patch edit mixes, and per-stratum costs of the
incremental engine.  This subsystem makes them first-class:

* :mod:`repro.observability.metrics` — counters, gauges, monotonic-timer
  histograms (p50/p95/max), and the process-wide
  :class:`~repro.observability.metrics.MetricsRegistry` with
  :func:`enable`/:func:`disable`/:func:`snapshot`/:func:`reset`;
* :mod:`repro.observability.spans` — ``with span("repro.diff.assign_shares")``
  context managers feeding histograms and sinks;
* :mod:`repro.observability.sinks` — in-memory, JSON-file, Prometheus
  text-format, and line-oriented span-event-log sinks.

Instrumented call sites live in :mod:`repro.core.diff`,
:mod:`repro.core.mtree`, :mod:`repro.incremental.engine`, and
:mod:`repro.incremental.driver`; metric names follow
``repro.<module>.<metric>`` (span histograms end in ``.ms``).

The disabled path costs nothing measurable: hot sites guard on the
slotted module-level :data:`OBS` flag (one attribute load, no dict
allocation per call), and instrumentation aggregates per diff / patch /
stratum — never per node.  Typical usage::

    from repro import observability as obs

    obs.enable()
    diff(a, b)
    print(obs.render_report(obs.snapshot()))
    obs.disable(); obs.reset()
"""

from .metrics import (
    OBS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    disable,
    enable,
    enabled,
    export,
    metrics,
    reset,
    snapshot,
)
from .sinks import (
    EventLogSink,
    InMemorySink,
    JSONFileSink,
    prometheus_text,
    render_report,
)
from .spans import NOOP_SPAN, Span, span

__all__ = [
    "OBS",
    "REGISTRY",
    "Counter",
    "EventLogSink",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JSONFileSink",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "disable",
    "enable",
    "enabled",
    "export",
    "metrics",
    "prometheus_text",
    "render_report",
    "reset",
    "snapshot",
    "span",
]
