"""Zero-overhead-when-disabled metrics, span tracing, and timeline export.

The evaluation of Section 6 needs quantities the algorithm does not
return: per-pass costs of truediff's four passes, share/equivalence
statistics, node reuse, patch edit mixes, and per-stratum costs of the
incremental engine.  This subsystem makes them first-class:

* :mod:`repro.observability.metrics` — counters, gauges, monotonic-timer
  histograms (p50/p95/max), and the process-wide
  :class:`~repro.observability.metrics.MetricsRegistry` with
  :func:`enable`/:func:`disable`/:func:`snapshot`/:func:`merge`/:func:`reset`;
* :mod:`repro.observability.spans` — ``with span("repro.diff.assign_shares")``
  context managers feeding histograms, sinks, and (when tracing is on)
  the causal trace buffer, with typed attributes and outcome recording;
* :mod:`repro.observability.tracing` — trace contexts (trace/span/parent
  ids over :mod:`contextvars`), wall-clock epoch timestamps, head
  sampling (``OBS_SAMPLE=1/N``), and cross-process propagation
  (:func:`current_context` / :class:`remote_context`);
* :mod:`repro.observability.aggregate` — the batch-pool glue: obs
  envelopes, fork-safe worker setup, per-worker telemetry deltas with
  JSONL spill, and the driver-side :class:`TelemetryCollector`;
* :mod:`repro.observability.export` — Chrome trace-event JSON, OTLP-shaped
  JSON, and plain-text timeline rendering of collected spans;
* :mod:`repro.observability.sinks` — in-memory, JSON-file, Prometheus
  text-format, and line-oriented span-event-log sinks.

Instrumented call sites live in :mod:`repro.core.diff`,
:mod:`repro.core.flatdiff`, :mod:`repro.core.mtree`,
:mod:`repro.incremental.engine`, :mod:`repro.incremental.driver`, and
:mod:`repro.batch.worker`; metric names follow
``repro.<module>.<metric>`` (span histograms end in ``.ms``, span error
counters in ``.errors``).

The disabled path costs nothing measurable: hot sites guard on the
slotted module-level :data:`OBS` flag (one attribute load, no dict
allocation per call), and instrumentation aggregates per diff / patch /
stratum — never per node.  Typical usage::

    from repro import observability as obs

    obs.enable_tracing(sample="1/8")
    diff(a, b)
    obs.write_trace("trace.json", obs.take_spans(), fmt="chrome")
    obs.disable(); obs.reset()
"""

from .aggregate import (
    TelemetryCollector,
    read_spill_dir,
    worker_setup,
    worker_telemetry,
)
from .export import (
    chrome_trace,
    otlp_spans,
    read_spans,
    render_timeline,
    write_trace,
)
from .metrics import (
    OBS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    disable,
    enable,
    enabled,
    export,
    merge,
    metrics,
    reset,
    snapshot,
)
from .sinks import (
    EventLogSink,
    InMemorySink,
    JSONFileSink,
    parse_event_line,
    prometheus_text,
    render_report,
)
from .spans import NOOP_SPAN, Span, span
from .tracing import (
    TRACE,
    TraceContext,
    current_context,
    disable_tracing,
    enable_tracing,
    parse_sample,
    remote_context,
    reset_tracing,
    span_count,
    take_spans,
    tracing_enabled,
)

__all__ = [
    "OBS",
    "REGISTRY",
    "TRACE",
    "Counter",
    "EventLogSink",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JSONFileSink",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "TelemetryCollector",
    "TraceContext",
    "chrome_trace",
    "current_context",
    "disable",
    "disable_tracing",
    "enable",
    "enable_tracing",
    "enabled",
    "export",
    "merge",
    "metrics",
    "otlp_spans",
    "parse_event_line",
    "parse_sample",
    "prometheus_text",
    "read_spans",
    "read_spill_dir",
    "remote_context",
    "render_report",
    "render_timeline",
    "reset",
    "reset_tracing",
    "snapshot",
    "span",
    "span_count",
    "take_spans",
    "tracing_enabled",
    "worker_setup",
    "worker_telemetry",
    "write_trace",
]
