"""Pluggable sinks and exporters for the metrics registry.

A sink is any object with two methods:

* ``event(name, start, dur_ms, epoch=0.0, status="ok")`` — called once
  per closed span while instrumentation is enabled and the sink is
  attached.  ``start`` is the span's ``perf_counter`` origin (ordering
  and gap analysis within one process); ``epoch`` is the wall-clock
  start in seconds since the Unix epoch, the timestamp that makes events
  from different processes correlatable; ``status`` is ``"ok"`` or
  ``"error"``;
* ``export(snap)`` — called with a registry snapshot by
  :func:`repro.observability.export`.

Provided sinks:

* :class:`InMemorySink` — keeps events and snapshots in lists (tests,
  REPL inspection);
* :class:`JSONFileSink` — writes each exported snapshot as a JSON
  document to a path;
* :class:`EventLogSink` — a line-oriented span stream
  (``<epoch> <start> <name> <dur_ms> [error=<type>]`` per line) to a
  path or file object.  :func:`parse_event_line` reads both this format
  and the pre-epoch three-field format (``<start> <name> <dur_ms>``), so
  old logs stay readable.

Exporter functions (no sink object needed):

* :func:`prometheus_text` — renders a snapshot in the Prometheus text
  exposition format (counters as ``_total``, histograms as summaries
  with ``quantile`` labels); metric names are sanitized and label values
  escaped per the exposition format, so adapter names and worker ids can
  be used as labels verbatim;
* :func:`render_report` — the human-readable pass-by-pass report used
  by ``python -m repro stats``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Mapping, Optional, TextIO


class InMemorySink:
    """Collects span events and exported snapshots in memory."""

    __slots__ = ("events", "snapshots")

    def __init__(self) -> None:
        self.events: list[tuple[str, float, float, float, str]] = []
        self.snapshots: list[dict] = []

    def event(
        self, name: str, start: float, dur_ms: float,
        epoch: float = 0.0, status: str = "ok",
    ) -> None:
        self.events.append((name, start, dur_ms, epoch, status))

    def export(self, snap: dict) -> None:
        self.snapshots.append(snap)


class JSONFileSink:
    """Writes each exported snapshot as a JSON document to ``path``."""

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def event(
        self, name: str, start: float, dur_ms: float,
        epoch: float = 0.0, status: str = "ok",
    ) -> None:
        pass  # snapshots only

    def export(self, snap: dict) -> None:
        with open(self.path, "w", encoding="utf8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")


class EventLogSink:
    """A line-oriented span stream, one closed span per line::

        <epoch> <start> <name> <dur_ms> [error=<type or status>]

    ``epoch`` (wall-clock seconds) correlates events across processes;
    ``start`` (``perf_counter`` origin) orders them precisely within
    one.  Failed spans carry a trailing ``error=...`` field.  Lines in
    the pre-epoch format (``<start> <name> <dur_ms>``) are still parsed
    by :func:`parse_event_line`.
    """

    __slots__ = ("_fh", "_own")

    def __init__(self, target: "str | TextIO") -> None:
        if isinstance(target, str):
            self._fh = open(target, "w", encoding="utf8")
            self._own = True
        else:
            self._fh = target
            self._own = False

    def event(
        self, name: str, start: float, dur_ms: float,
        epoch: float = 0.0, status: str = "ok",
    ) -> None:
        suffix = "" if status == "ok" else f" error={status}"
        self._fh.write(f"{epoch:.6f} {start:.6f} {name} {dur_ms:.3f}{suffix}\n")

    def export(self, snap: dict) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.flush()
        if self._own:
            self._fh.close()


def parse_event_line(line: str) -> Optional[dict[str, Any]]:
    """Parse one span-stream line into a dict, tolerating both formats.

    New format: ``<epoch> <start> <name> <dur_ms> [error=<type>]``.
    Old format (pre-epoch): ``<start> <name> <dur_ms>`` — parsed with
    ``epoch=None`` so consumers know wall-clock correlation is
    unavailable for that line.  Returns ``None`` for blank/unparseable
    lines rather than raising (log files may be truncated mid-line).
    """
    fields = line.split()
    if len(fields) < 3:
        return None
    try:
        if len(fields) == 3:
            # old format: start name dur_ms
            return {
                "epoch": None,
                "start": float(fields[0]),
                "name": fields[1],
                "dur_ms": float(fields[2]),
                "status": "ok",
            }
        out = {
            "epoch": float(fields[0]),
            "start": float(fields[1]),
            "name": fields[2],
            "dur_ms": float(fields[3]),
            "status": "ok",
        }
    except ValueError:
        return None
    for extra in fields[4:]:
        if extra.startswith("error="):
            out["status"] = extra[len("error="):] or "error"
    return out


# -- Prometheus text exposition ----------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a legal Prometheus name.

    The exposition format requires ``[a-zA-Z_:][a-zA-Z0-9_:]*`` — every
    other character becomes ``_`` and a leading digit gets a ``_``
    prefix.
    """
    out = _PROM_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out or "_"


def _prom_label_value(value: Any) -> str:
    """Escape a label value per the text exposition format: backslash,
    double-quote, and line-feed must be escaped inside the quotes."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Optional[Mapping[str, Any]], extra: str = "") -> str:
    """Render a label set (plus an optional pre-rendered pair) as
    ``{k="v",...}``; empty when there is nothing to render."""
    parts = [
        f'{_prom_name(str(k))}="{_prom_label_value(v)}"'
        for k, v in (labels or {}).items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(
    snap: dict, labels: Optional[Mapping[str, Any]] = None
) -> str:
    """Render a registry snapshot in the Prometheus text format.

    Counters become ``<name>_total`` counter samples, gauges stay
    gauges, histograms are exposed as summaries (``quantile`` labels,
    ``_sum``/``_count``) plus a non-standard ``_max`` gauge.

    ``labels`` attaches a label set to every sample — the batch driver
    renders per-worker snapshots with ``labels={"worker": pid}`` — with
    values escaped per the exposition format (quote, backslash, and
    newline safe).
    """
    base = _prom_labels(labels)
    lines: list[str] = []
    for name, value in snap.get("counters", {}).items():
        pname = _prom_name(name) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname}{base} {value}")
    for name, value in snap.get("gauges", {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname}{base} {value}")
    q50 = _prom_labels(labels, extra='quantile="0.5"')
    q95 = _prom_labels(labels, extra='quantile="0.95"')
    for name, summ in snap.get("histograms", {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} summary")
        lines.append(f"{pname}{q50} {summ['p50']}")
        lines.append(f"{pname}{q95} {summ['p95']}")
        lines.append(f"{pname}_sum{base} {summ['total']}")
        lines.append(f"{pname}_count{base} {summ['count']}")
        lines.append(f"# TYPE {pname}_max gauge")
        lines.append(f"{pname}_max{base} {summ['max']}")
    return "\n".join(lines) + "\n"


def render_report(snap: dict, title: Optional[str] = None) -> str:
    """Human-readable report: histograms (the per-pass timings) first,
    then counters, then gauges."""
    lines: list[str] = []
    if title:
        lines.append(title)
    hists: dict[str, Any] = snap.get("histograms", {})
    if hists:
        lines.append("spans / histograms:")
        width = max(len(n) for n in hists)
        for name, s in hists.items():
            lines.append(
                f"  {name:<{width}}  count {s['count']:>6}  "
                f"p50 {s['p50']:>9.3f}  p95 {s['p95']:>9.3f}  "
                f"max {s['max']:>9.3f}  total {s['total']:>10.3f}"
            )
    counters: dict[str, int] = snap.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name, v in counters.items():
            lines.append(f"  {name:<{width}}  {v}")
    gauges: dict[str, float] = snap.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name, v in gauges.items():
            lines.append(f"  {name:<{width}}  {v}")
    if len(lines) <= (1 if title else 0):
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
