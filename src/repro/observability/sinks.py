"""Pluggable sinks and exporters for the metrics registry.

A sink is any object with two methods:

* ``event(name, start, dur_ms)`` — called once per closed span while
  instrumentation is enabled and the sink is attached;
* ``export(snap)`` — called with a registry snapshot by
  :func:`repro.observability.export`.

Provided sinks:

* :class:`InMemorySink` — keeps events and snapshots in lists (tests,
  REPL inspection);
* :class:`JSONFileSink` — writes each exported snapshot as a JSON
  document to a path;
* :class:`EventLogSink` — a line-oriented span stream
  (``<start> <name> <dur_ms>`` per line) to a path or file object.

Exporter functions (no sink object needed):

* :func:`prometheus_text` — renders a snapshot in the Prometheus text
  exposition format (counters as ``_total``, histograms as summaries
  with ``quantile`` labels);
* :func:`render_report` — the human-readable pass-by-pass report used
  by ``python -m repro stats``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Optional, TextIO


class InMemorySink:
    """Collects span events and exported snapshots in memory."""

    __slots__ = ("events", "snapshots")

    def __init__(self) -> None:
        self.events: list[tuple[str, float, float]] = []
        self.snapshots: list[dict] = []

    def event(self, name: str, start: float, dur_ms: float) -> None:
        self.events.append((name, start, dur_ms))

    def export(self, snap: dict) -> None:
        self.snapshots.append(snap)


class JSONFileSink:
    """Writes each exported snapshot as a JSON document to ``path``."""

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def event(self, name: str, start: float, dur_ms: float) -> None:
        pass  # snapshots only

    def export(self, snap: dict) -> None:
        with open(self.path, "w", encoding="utf8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")


class EventLogSink:
    """A line-oriented span stream: ``<start> <name> <dur_ms>`` per line.

    ``start`` is the span's ``time.perf_counter()`` origin — useful for
    ordering and gap analysis within one process, not wall-clock time.
    """

    __slots__ = ("_fh", "_own")

    def __init__(self, target: "str | TextIO") -> None:
        if isinstance(target, str):
            self._fh = open(target, "w", encoding="utf8")
            self._own = True
        else:
            self._fh = target
            self._own = False

    def event(self, name: str, start: float, dur_ms: float) -> None:
        self._fh.write(f"{start:.6f} {name} {dur_ms:.3f}\n")

    def export(self, snap: dict) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.flush()
        if self._own:
            self._fh.close()


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _PROM_BAD.sub("_", name)


def prometheus_text(snap: dict) -> str:
    """Render a registry snapshot in the Prometheus text format.

    Counters become ``<name>_total`` counter samples, gauges stay
    gauges, histograms are exposed as summaries (``quantile`` labels,
    ``_sum``/``_count``) plus a non-standard ``_max`` gauge.
    """
    lines: list[str] = []
    for name, value in snap.get("counters", {}).items():
        pname = _prom_name(name) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {value}")
    for name, value in snap.get("gauges", {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {value}")
    for name, summ in snap.get("histograms", {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} summary")
        lines.append(f'{pname}{{quantile="0.5"}} {summ["p50"]}')
        lines.append(f'{pname}{{quantile="0.95"}} {summ["p95"]}')
        lines.append(f"{pname}_sum {summ['total']}")
        lines.append(f"{pname}_count {summ['count']}")
        lines.append(f"# TYPE {pname}_max gauge")
        lines.append(f"{pname}_max {summ['max']}")
    return "\n".join(lines) + "\n"


def render_report(snap: dict, title: Optional[str] = None) -> str:
    """Human-readable report: histograms (the per-pass timings) first,
    then counters, then gauges."""
    lines: list[str] = []
    if title:
        lines.append(title)
    hists: dict[str, Any] = snap.get("histograms", {})
    if hists:
        lines.append("spans / histograms:")
        width = max(len(n) for n in hists)
        for name, s in hists.items():
            lines.append(
                f"  {name:<{width}}  count {s['count']:>6}  "
                f"p50 {s['p50']:>9.3f}  p95 {s['p95']:>9.3f}  "
                f"max {s['max']:>9.3f}  total {s['total']:>10.3f}"
            )
    counters: dict[str, int] = snap.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name, v in counters.items():
            lines.append(f"  {name:<{width}}  {v}")
    gauges: dict[str, float] = snap.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name, v in gauges.items():
            lines.append(f"  {name:<{width}}  {v}")
    if len(lines) <= (1 if title else 0):
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
