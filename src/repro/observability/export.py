"""Timeline export: Chrome trace-event JSON and OTLP-shaped span files.

Consumes the span records drained from the trace buffer
(:func:`repro.observability.tracing.take_spans`) or shipped back by
batch workers, and renders them for external tooling:

* :func:`chrome_trace` — the Trace Event Format understood by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``: complete
  (``"ph": "X"``) events with microsecond timestamps on the shared
  wall-clock timeline, ``pid`` mapped to the originating process
  (driver vs. pool workers, named via metadata events) and trace/span
  ids preserved in ``args``;
* :func:`otlp_spans` — a flat OTLP-shaped JSON document
  (``resourceSpans`` → ``scopeSpans`` → ``spans`` with hex ids and
  nanosecond timestamps), one resource per process, importable by
  OTLP-compatible tooling and by ``python -m repro trace``;
* :func:`read_spans` — the inverse: load span records back from an OTLP
  file, a Chrome trace file (as long as it was written by
  :func:`chrome_trace`, which keeps the ids in ``args``), a raw span
  list, or a JSONL stream of records/telemetry envelopes (the
  per-worker spill format);
* :func:`render_timeline` — a human-readable causal tree for terminal
  inspection.

``write_trace`` picks the format by name and writes the document.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Optional

TRACE_FORMATS = ("chrome", "otlp", "timeline")


def _by_start(spans: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    return sorted(spans, key=lambda r: (r.get("start") or 0.0, r.get("name", "")))


def _process_names(
    spans: list[dict[str, Any]], driver_pid: Optional[int]
) -> dict[int, str]:
    pids = sorted({int(r.get("pid") or 0) for r in spans})
    names = {}
    for pid in pids:
        if driver_pid is not None and pid == driver_pid:
            names[pid] = "repro-driver"
        elif driver_pid is not None:
            names[pid] = f"repro-worker-{pid}"
        else:
            names[pid] = f"repro-{pid}"
    return names


def chrome_trace(
    spans: Iterable[dict[str, Any]], driver_pid: Optional[int] = None
) -> dict[str, Any]:
    """Render span records as a Chrome trace-event document.

    Timestamps are wall-clock microseconds rebased to the earliest span
    (Perfetto renders absolute epochs poorly); the absolute epoch and the
    trace/span/parent ids ride along in each event's ``args`` so the
    document round-trips through :func:`read_spans`.  ``driver_pid``
    names that process ``repro-driver`` and every other one
    ``repro-worker-<pid>`` in the process list.
    """
    records = _by_start(spans)
    origin = records[0]["start"] if records else 0.0
    events: list[dict[str, Any]] = []
    for pid, pname in _process_names(records, driver_pid).items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": pname},
            }
        )
    for rec in records:
        pid = int(rec.get("pid") or 0)
        args: dict[str, Any] = {
            "trace_id": rec.get("trace_id"),
            "span_id": rec.get("span_id"),
            "parent_id": rec.get("parent_id"),
            "epoch": rec.get("start"),
            "status": rec.get("status", "ok"),
        }
        if rec.get("error_type"):
            args["error_type"] = rec["error_type"]
        if rec.get("attrs"):
            args.update(rec["attrs"])
        events.append(
            {
                "name": rec["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round((rec["start"] - origin) * 1e6, 3),
                "dur": round(rec.get("dur_ms", 0.0) * 1000.0, 3),
                "pid": pid,
                "tid": pid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- OTLP-shaped JSON --------------------------------------------------------

_ATTR_META = frozenset(
    {"trace_id", "span_id", "parent_id", "epoch", "status", "error_type"}
)


def _otlp_value(value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _from_otlp_value(value: dict[str, Any]) -> Any:
    if "boolValue" in value:
        return bool(value["boolValue"])
    if "intValue" in value:
        return int(value["intValue"])
    if "doubleValue" in value:
        return float(value["doubleValue"])
    return value.get("stringValue")


def otlp_spans(
    spans: Iterable[dict[str, Any]], driver_pid: Optional[int] = None
) -> dict[str, Any]:
    """Render span records as a flat OTLP-shaped JSON document: one
    ``resourceSpans`` entry per originating process (``service.name`` and
    ``process.pid`` resource attributes), spans with hex ids and Unix
    nanosecond timestamps, OTLP status codes (1=OK, 2=ERROR)."""
    records = _by_start(spans)
    by_pid: dict[int, list[dict[str, Any]]] = {}
    for rec in records:
        by_pid.setdefault(int(rec.get("pid") or 0), []).append(rec)
    names = _process_names(records, driver_pid)
    resource_spans = []
    for pid, recs in sorted(by_pid.items()):
        otlp = []
        for rec in recs:
            start_ns = int(rec["start"] * 1e9)
            end_ns = start_ns + int(rec.get("dur_ms", 0.0) * 1e6)
            entry: dict[str, Any] = {
                "traceId": rec.get("trace_id") or "",
                "spanId": rec.get("span_id") or "",
                "parentSpanId": rec.get("parent_id") or "",
                "name": rec["name"],
                "kind": 1,  # SPAN_KIND_INTERNAL
                "startTimeUnixNano": str(start_ns),
                "endTimeUnixNano": str(end_ns),
                "attributes": [
                    {"key": k, "value": _otlp_value(v)}
                    for k, v in (rec.get("attrs") or {}).items()
                ],
                "status": (
                    {"code": 1}
                    if rec.get("status", "ok") == "ok"
                    else {"code": 2, "message": rec.get("error_type") or "error"}
                ),
            }
            otlp.append(entry)
        resource_spans.append(
            {
                "resource": {
                    "attributes": [
                        {"key": "service.name", "value": {"stringValue": names[pid]}},
                        {"key": "process.pid", "value": {"intValue": str(pid)}},
                    ]
                },
                "scopeSpans": [
                    {"scope": {"name": "repro.observability"}, "spans": otlp}
                ],
            }
        )
    return {"resourceSpans": resource_spans}


# -- readers -----------------------------------------------------------------


def _records_from_otlp(doc: dict[str, Any]) -> list[dict[str, Any]]:
    out = []
    for res in doc.get("resourceSpans", []):
        pid = 0
        for attr in res.get("resource", {}).get("attributes", []):
            if attr.get("key") == "process.pid":
                pid = int(_from_otlp_value(attr["value"]) or 0)
        for scope in res.get("scopeSpans", []):
            for sp in scope.get("spans", []):
                start_ns = int(sp["startTimeUnixNano"])
                end_ns = int(sp["endTimeUnixNano"])
                status = sp.get("status") or {}
                rec: dict[str, Any] = {
                    "name": sp["name"],
                    "trace_id": sp.get("traceId") or None,
                    "span_id": sp.get("spanId") or None,
                    "parent_id": sp.get("parentSpanId") or None,
                    "start": start_ns / 1e9,
                    "dur_ms": (end_ns - start_ns) / 1e6,
                    "pid": pid,
                    "status": "error" if status.get("code") == 2 else "ok",
                }
                if status.get("code") == 2 and status.get("message"):
                    rec["error_type"] = status["message"]
                attrs = {
                    a["key"]: _from_otlp_value(a["value"])
                    for a in sp.get("attributes", [])
                }
                if attrs:
                    rec["attrs"] = attrs
                out.append(rec)
    return out


def _records_from_chrome(doc: dict[str, Any]) -> list[dict[str, Any]]:
    out = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args") or {})
        rec: dict[str, Any] = {
            "name": ev["name"],
            "trace_id": args.pop("trace_id", None),
            "span_id": args.pop("span_id", None),
            "parent_id": args.pop("parent_id", None),
            "start": args.pop("epoch", None) or ev.get("ts", 0) / 1e6,
            "dur_ms": ev.get("dur", 0.0) / 1000.0,
            "pid": ev.get("pid", 0),
            "status": args.pop("status", "ok"),
        }
        error_type = args.pop("error_type", None)
        if error_type:
            rec["error_type"] = error_type
        if args:
            rec["attrs"] = args
        out.append(rec)
    return out


def _record_like(obj: Any) -> bool:
    return isinstance(obj, dict) and "name" in obj and "dur_ms" in obj


def read_spans(path: str) -> list[dict[str, Any]]:
    """Load span records from any format this module (or the batch
    worker spill) writes: OTLP JSON, Chrome trace JSON, a raw JSON list
    of records, or JSONL of records / telemetry envelopes.

    Raises ``ValueError`` when the file holds none of those shapes.
    """
    with open(path, encoding="utf8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        if "resourceSpans" in doc:
            return _records_from_otlp(doc)
        if "traceEvents" in doc:
            return _records_from_chrome(doc)
        if _record_like(doc):
            return [doc]
        if "spans" in doc:  # a single telemetry envelope
            return list(doc["spans"])
        raise ValueError(f"{path}: unrecognized trace document shape")
    if isinstance(doc, list):
        return [r for r in doc if _record_like(r)]
    # JSONL: one record or telemetry envelope per line
    out: list[dict[str, Any]] = []
    parsed_any = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        parsed_any = True
        if _record_like(obj):
            out.append(obj)
        elif isinstance(obj, dict) and "spans" in obj:
            out.extend(obj["spans"])
    if not parsed_any:
        raise ValueError(f"{path}: not JSON, JSONL, or a known trace format")
    return out


def write_trace(
    path: str,
    spans: Iterable[dict[str, Any]],
    fmt: str = "chrome",
    driver_pid: Optional[int] = None,
) -> None:
    """Write span records to ``path`` as ``chrome`` trace-event JSON,
    ``otlp`` JSON, or a plain-text ``timeline``."""
    if driver_pid is None:
        driver_pid = os.getpid()
    spans = list(spans)
    if fmt == "chrome":
        doc: Any = chrome_trace(spans, driver_pid)
    elif fmt == "otlp":
        doc = otlp_spans(spans, driver_pid)
    elif fmt == "timeline":
        with open(path, "w", encoding="utf8") as fh:
            fh.write(render_timeline(spans))
            fh.write("\n")
        return
    else:
        raise ValueError(
            f"unknown trace format {fmt!r}; expected one of {TRACE_FORMATS}"
        )
    with open(path, "w", encoding="utf8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def render_timeline(spans: Iterable[dict[str, Any]]) -> str:
    """A terminal-friendly causal tree: roots ordered by wall-clock
    start, children indented under their parents, one line per span with
    offset, duration, pid, status, and attributes."""
    records = _by_start(spans)
    if not records:
        return "(no spans)"
    origin = records[0]["start"]
    by_id = {r["span_id"]: r for r in records if r.get("span_id")}
    children: dict[Optional[str], list[dict[str, Any]]] = {}
    for rec in records:
        parent = rec.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # parent unsampled or from an unexported process
        children.setdefault(parent, []).append(rec)

    lines: list[str] = []

    def emit(rec: dict[str, Any], depth: int) -> None:
        offset_ms = (rec["start"] - origin) * 1000.0
        status = rec.get("status", "ok")
        tail = "" if status == "ok" else f"  !{rec.get('error_type') or status}"
        attrs = rec.get("attrs") or {}
        if attrs:
            rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
            tail += f"  [{rendered}]"
        lines.append(
            f"{offset_ms:>10.3f}ms  {'  ' * depth}{rec['name']}  "
            f"({rec.get('dur_ms', 0.0):.3f} ms, pid {rec.get('pid', 0)})"
            f"{tail}"
        )
        for kid in children.get(rec.get("span_id"), []) if rec.get("span_id") else []:
            emit(kid, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    n_pids = len({r.get("pid") for r in records})
    traces = len({r.get("trace_id") for r in records if r.get("trace_id")})
    lines.append(
        f"-- {len(records)} span(s), {traces} trace(s), {n_pids} process(es)"
    )
    return "\n".join(lines)
