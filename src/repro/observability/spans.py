"""Span tracing: timed context managers feeding histograms, sinks, and
the causal trace buffer.

``with span("repro.diff.assign_shares"): ...`` measures the block with
the monotonic clock and, on exit,

* observes the duration (milliseconds) into the histogram named
  ``<name>.ms`` in the process-wide registry,
* records its outcome: a pass that raises closes with
  ``status="error"``, its ``error_type``, and a bump of the
  ``<name>.errors`` counter — a raising pass is no longer
  indistinguishable from a succeeding one,
* emits one event to every attached sink (the line-oriented
  :class:`~repro.observability.sinks.EventLogSink` turns these into a
  span stream) carrying both the wall-clock epoch and the monotonic
  origin, and
* when tracing is enabled (:func:`repro.observability.tracing.enable_tracing`),
  appends a span *record* — trace/span/parent ids from the contextvar
  chain, epoch start, duration, typed attributes — to the process-local
  trace buffer, provided its head-sampling decision came up sampled.

Attributes are typed key/values attached per span: pass a dict at
creation (``span("repro.diff", {"engine": "flat"})``) or set them inside
the block (``sp.set_attrs(shares=n)``) — e.g. node counts, share and
assignment statistics, engine and typecheck mode, which let latency be
attributed to tree shape rather than guessed at.

When instrumentation is disabled, :func:`span` returns a single shared
no-op context manager — no allocation, no clock read — so spans may be
left in place on warm paths.  Spans are re-entrant but the shared no-op
is stateless, so nesting is always safe.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from . import tracing as _tracing
from .metrics import OBS, REGISTRY


class Span:
    """One timed region; created only while instrumentation is enabled."""

    __slots__ = (
        "name",
        "attrs",
        "status",
        "error_type",
        "duration_ms",
        "_t0",
        "_epoch",
        "_token",
        "_ctx",
    )

    def __init__(self, name: str, attrs: Optional[dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs = attrs
        self.status = "ok"
        self.error_type: Optional[str] = None
        self.duration_ms = 0.0
        self._t0 = 0.0
        self._epoch = 0.0
        self._token = None
        self._ctx = None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one typed attribute to the span record."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def set_attrs(self, **attrs: Any) -> None:
        """Attach several typed attributes to the span record."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def set_status(self, status: str, error_type: Optional[str] = None) -> None:
        """Mark the span's outcome explicitly (an exception escaping the
        block overrides this on exit)."""
        self.status = status
        self.error_type = error_type

    def __enter__(self) -> "Span":
        if _tracing.TRACE.enabled:
            self._token, self._ctx = _tracing.begin_span()
        self._epoch = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_ms = (time.perf_counter() - self._t0) * 1000.0
        self.duration_ms = dur_ms
        if exc_type is not None:
            self.status = "error"
            self.error_type = exc_type.__name__
        REGISTRY.histogram(self.name + ".ms").observe(dur_ms)
        if self.status != "ok":
            REGISTRY.counter(self.name + ".errors").inc()
        if REGISTRY.sinks:
            REGISTRY.emit_event(self.name, self._t0, dur_ms, self._epoch, self.status)
        if self._token is not None:
            _tracing.end_span(
                self._token,
                self._ctx,
                self.name,
                self._epoch,
                dur_ms,
                self.status,
                self.error_type,
                self.attrs,
            )
            self._token = self._ctx = None


class _NoopSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()
    duration_ms = 0.0
    status = "ok"
    error_type = None
    attrs = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass

    def set_status(self, status: str, error_type: Optional[str] = None) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def span(name: str, attrs: Optional[dict[str, Any]] = None):
    """A context manager timing ``name``; shared no-op when disabled.

    ``attrs`` (optional) seeds the span's typed attributes; more may be
    attached inside the block with :meth:`Span.set_attrs`.
    """
    if not OBS.enabled:
        return NOOP_SPAN
    return Span(name, attrs)
