"""Span tracing: timed context managers feeding histograms and sinks.

``with span("repro.diff.assign_shares"): ...`` measures the block with
the monotonic clock and, on exit,

* observes the duration (milliseconds) into the histogram named
  ``<name>.ms`` in the process-wide registry, and
* emits one event to every attached sink (the line-oriented
  :class:`~repro.observability.sinks.EventLogSink` turns these into a
  span stream).

When instrumentation is disabled, :func:`span` returns a single shared
no-op context manager — no allocation, no clock read — so spans may be
left in place on warm paths.  Spans are re-entrant but the shared no-op
is stateless, so nesting is always safe.
"""

from __future__ import annotations

import time

from .metrics import OBS, REGISTRY


class Span:
    """One timed region; created only while instrumentation is enabled."""

    __slots__ = ("name", "_t0", "duration_ms")

    def __init__(self, name: str) -> None:
        self.name = name
        self._t0 = 0.0
        self.duration_ms = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_ms = (time.perf_counter() - self._t0) * 1000.0
        self.duration_ms = dur_ms
        REGISTRY.histogram(self.name + ".ms").observe(dur_ms)
        if REGISTRY.sinks:
            REGISTRY.emit_event(self.name, self._t0, dur_ms)


class _NoopSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()
    duration_ms = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def span(name: str):
    """A context manager timing ``name``; shared no-op when disabled."""
    if not OBS.enabled:
        return NOOP_SPAN
    return Span(name)
