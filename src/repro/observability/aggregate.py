"""Cross-process span/metric aggregation for the batch pool.

The batch driver and its pool workers each have a *process-local*
metrics registry and trace buffer (:data:`~repro.observability.metrics.REGISTRY`,
:data:`~repro.observability.tracing.TRACE`).  This module is the glue
that makes them behave like one:

* the driver builds an **obs envelope** (:meth:`TelemetryCollector.envelope`)
  — a small picklable dict carrying the tracing flags, sampling rate,
  the driver's current trace context, and an optional spill directory —
  which rides along with each task chunk;
* each worker, via :func:`worker_setup`, resets any state it inherited
  from the driver through ``fork`` (a forked child starts with a *copy*
  of the driver's counters and trace buffer — publishing into that copy
  and shipping it back would double-count everything) and enables
  tracing per the envelope;
* after a chunk, :func:`worker_telemetry` drains the worker's spans and
  snapshots-then-resets its registry, producing a **delta** — so the
  driver-side merge is a plain sum, chunk after chunk;
* the driver absorbs deltas with :meth:`TelemetryCollector.absorb`
  (merging counters/gauges/histograms into its own registry and pooling
  span records), keeping a per-worker breakdown keyed by pid;
* when the envelope names a ``spill_dir``, workers append each chunk's
  telemetry as a JSON line to ``worker-<pid>.jsonl`` instead of
  returning it — the file survives a worker that is later killed or
  crashes, and :meth:`TelemetryCollector.absorb_spills` folds whatever
  was written back in at the end of the run.

The driver-side invariant (asserted by the tier-1 aggregation tests):
after ``absorb_spills``, each merged counter equals the driver's own
contribution plus the *sum* of the per-worker snapshots — under happy
paths, per-pair timeouts, and broken-pool recovery alike.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from . import tracing as _tracing
from .metrics import OBS, REGISTRY

#: Worker pid that already ran :func:`worker_setup` (fork-inheritance guard).
_WORKER_PID: Optional[int] = None
_SEQ = 0  # per-process telemetry sequence number


def worker_setup(obs: Optional[dict[str, Any]]) -> None:
    """Initialize observability in a pool worker, once per process.

    On Linux the default ``fork`` start method hands the worker a copy
    of the driver's registry values, trace buffer, and even its active
    contextvar — all of which must be discarded before the worker
    publishes anything, or the driver's own numbers come back to it and
    get double-counted on merge.  Idempotent per pid; a no-op in the
    driver process itself (the serial path publishes directly into the
    driver registry).
    """
    global _WORKER_PID
    if obs is None:
        return
    pid = os.getpid()
    if pid == obs.get("driver_pid") or pid == _WORKER_PID:
        return
    REGISTRY.reset()  # method form: keeps sinks, zeroes inherited values
    _tracing.reset_tracing()
    _tracing.take_spans()
    if obs.get("trace"):
        _tracing.enable_tracing(obs.get("sample", 1))
    elif obs.get("metrics"):
        OBS.enabled = True
        _tracing.disable_tracing()
    _WORKER_PID = pid


def worker_telemetry(obs: Optional[dict[str, Any]]) -> Optional[dict[str, Any]]:
    """Drain this worker's spans and metric deltas into an envelope.

    Snapshots the registry *with* histogram reservoirs, then resets it,
    so successive chunks from the same worker report disjoint deltas and
    the driver can merge by summing.  In the driver process (serial
    path) this returns ``None`` and touches nothing — spans and metrics
    are already where they belong.

    With a ``spill_dir`` in the envelope, the telemetry is appended to
    this worker's JSONL spill file and ``None`` is returned: the file is
    the transport, robust to the worker being killed before the chunk
    result would have been pickled back.
    """
    global _SEQ
    if obs is None or os.getpid() == obs.get("driver_pid"):
        return None
    _SEQ += 1
    telemetry: dict[str, Any] = {
        "pid": os.getpid(),
        "seq": _SEQ,
        "spans": _tracing.take_spans(),
        "metrics": REGISTRY.snapshot(samples=True),
        "dropped_spans": _tracing.TRACE.dropped,
    }
    REGISTRY.reset()
    spill_dir = obs.get("spill_dir")
    if spill_dir:
        path = os.path.join(spill_dir, f"worker-{telemetry['pid']}.jsonl")
        try:
            with open(path, "a", encoding="utf8") as fh:
                fh.write(json.dumps(telemetry) + "\n")
            return None
        except OSError:
            return telemetry  # spill dir gone — fall back to the pickle path
    return telemetry


def read_spill_dir(
    spill_dir: str, stats: Optional[dict[str, int]] = None
) -> list[dict[str, Any]]:
    """Load every telemetry envelope spilled under ``spill_dir``.

    Tolerates a worker killed mid-write: a truncated or otherwise
    unparseable line — including one that decodes as JSON but not as a
    telemetry envelope object — is skipped and *counted*, and every
    intact envelope around it is kept, so one dead worker can never
    abort the whole telemetry merge.  Pass a ``stats`` dict to receive
    the loss accounting: ``skipped_lines`` (undecodable or non-envelope
    lines) and ``skipped_files`` (spill files that vanished mid-read).
    """
    out: list[dict[str, Any]] = []
    if stats is None:
        stats = {}
    stats.setdefault("skipped_lines", 0)
    stats.setdefault("skipped_files", 0)
    try:
        names = sorted(os.listdir(spill_dir))
    except OSError:
        return out
    for fname in names:
        if not (fname.startswith("worker-") and fname.endswith(".jsonl")):
            continue
        try:
            with open(os.path.join(spill_dir, fname), encoding="utf8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        envelope = json.loads(line)
                    except json.JSONDecodeError:
                        stats["skipped_lines"] += 1
                        continue
                    # a line can be valid JSON yet still be a torn write
                    # (e.g. a truncated value that happens to parse);
                    # only envelope-shaped objects are mergeable
                    if not isinstance(envelope, dict):
                        stats["skipped_lines"] += 1
                        continue
                    out.append(envelope)
        except OSError:
            stats["skipped_files"] += 1
            continue
    return out


class TelemetryCollector:
    """Driver-side accumulator for worker telemetry envelopes.

    Collects span records from every process into one pool, merges
    worker metric deltas into the driver registry, and keeps the
    per-worker breakdown (summed per pid) for the batch summary.
    """

    __slots__ = ("trace", "sample_n", "spill_dir", "per_worker", "spans",
                 "dropped_spans", "spill_skipped", "_absorbed",
                 "_spills_read", "_finished")

    def __init__(
        self,
        trace: bool = False,
        sample: "str | int | None" = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        self.trace = trace
        self.sample_n = _tracing.parse_sample(sample)
        self.spill_dir = spill_dir
        #: pid -> merged metrics snapshot for that worker
        self.per_worker: dict[int, dict[str, Any]] = {}
        self.spans: list[dict[str, Any]] = []
        self.dropped_spans = 0
        #: spill lines lost to a worker killed mid-write (skip-and-count)
        self.spill_skipped = 0
        self._absorbed = 0
        self._spills_read = False
        self._finished = False

    def envelope(self) -> dict[str, Any]:
        """The picklable obs envelope shipped with each task chunk."""
        return {
            "metrics": OBS.enabled,
            "trace": self.trace and _tracing.TRACE.enabled,
            "sample": self.sample_n,
            "trace_ctx": _tracing.current_context(),
            "spill_dir": self.spill_dir,
            "driver_pid": os.getpid(),
        }

    def absorb(self, telemetry: Optional[dict[str, Any]]) -> None:
        """Fold one worker telemetry envelope into the driver state."""
        if not telemetry or not isinstance(telemetry, dict):
            return
        self._absorbed += 1
        pid = int(telemetry.get("pid") or 0)
        self.spans.extend(telemetry.get("spans") or ())
        self.dropped_spans += int(telemetry.get("dropped_spans") or 0)
        snap = telemetry.get("metrics")
        if snap:
            REGISTRY.merge(snap)
            mine = self.per_worker.get(pid)
            if mine is None:
                self.per_worker[pid] = _copy_snapshot(snap)
            else:
                _sum_snapshot(mine, snap)

    def absorb_spills(self) -> int:
        """Absorb everything workers spilled to disk; returns the number
        of envelopes read.  Idempotent — spill files are read once, at
        end of run (spilling workers return no inline telemetry, so
        there is nothing else to dedup against)."""
        if not self.spill_dir or self._spills_read:
            return 0
        self._spills_read = True
        stats: dict[str, int] = {}
        envelopes = read_spill_dir(self.spill_dir, stats)
        self.spill_skipped += stats["skipped_lines"] + stats["skipped_files"]
        for telemetry in envelopes:
            self.absorb(telemetry)
        return len(envelopes)

    def finish(self) -> list[dict[str, Any]]:
        """Drain the driver's own trace buffer into the pool and return
        every span collected, driver and workers together.  Idempotent."""
        self.absorb_spills()
        if self.trace and not self._finished:
            self.spans.extend(_tracing.take_spans())
            self.dropped_spans += _tracing.TRACE.dropped
        self._finished = True
        return self.spans

    def summary(self) -> dict[str, Any]:
        """Plain-data aggregation summary for the batch report."""
        return {
            "envelopes": self._absorbed,
            "workers": sorted(self.per_worker),
            "spans": len(self.spans),
            "dropped_spans": self.dropped_spans,
            "spill_skipped": self.spill_skipped,
        }


def _copy_snapshot(snap: dict[str, Any]) -> dict[str, Any]:
    return {
        "counters": dict(snap.get("counters", {})),
        "gauges": dict(snap.get("gauges", {})),
        "histograms": {k: dict(v) for k, v in snap.get("histograms", {}).items()},
    }


def _sum_snapshot(into: dict[str, Any], snap: dict[str, Any]) -> None:
    """Accumulate one delta snapshot into a per-worker running total."""
    counters = into.setdefault("counters", {})
    for name, value in snap.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = into.setdefault("gauges", {})
    gauges.update(snap.get("gauges", {}))
    hists = into.setdefault("histograms", {})
    for name, summ in snap.get("histograms", {}).items():
        mine = hists.get(name)
        if mine is None:
            hists[name] = dict(summ)
            continue
        mine["count"] = mine.get("count", 0) + summ.get("count", 0)
        mine["total"] = mine.get("total", 0.0) + summ.get("total", 0.0)
        mine["max"] = max(mine.get("max", 0.0), summ.get("max", 0.0))
        if "samples" in mine or "samples" in summ:
            merged = list(mine.get("samples") or []) + list(summ.get("samples") or [])
            mine["samples"] = merged
