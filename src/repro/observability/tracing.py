"""Causal trace contexts: trace/span identity, propagation, sampling.

PR 2's spans were flat named timers: each ``with span(name)`` fed a
histogram and an event sink, but nothing related one span to another, and
the ``perf_counter``-relative origins made events from two processes
incomparable.  This module upgrades them into a **causal tree**:

* every enabled span carries a :class:`TraceContext` — a ``trace_id``
  shared by all spans of one logical operation, its own ``span_id``, and
  the ``parent_id`` of the span it ran under — tracked through
  :mod:`contextvars`, so nesting works across ``with`` blocks, helper
  functions, and (via :func:`current_context` / :func:`remote_context`)
  process boundaries;
* span records capture **wall-clock epoch** start times alongside the
  monotonic duration, so spans from the batch driver and its pool
  workers land on one global timeline;
* **head sampling** (``OBS_SAMPLE=1/N``) decides once per trace root —
  or once per *resample point*, see below — whether the whole subtree is
  recorded, so always-on tracing in batch costs a counter bump and a
  modulo for the unsampled majority.

The zero-overhead story is unchanged: with the :data:`~repro.observability.metrics.OBS`
flag off, :func:`repro.observability.span` still returns the shared
no-op and this module is never consulted.  With metrics on but tracing
off (``TRACE.enabled`` false), spans pay two attribute loads extra.

Resample points
---------------

A batch run is *one* trace (the driver's ``repro.batch.run`` root), but
sampling all-or-nothing at that root would make ``OBS_SAMPLE`` useless
for exactly the workload it exists for.  A context propagated with
``resample=True`` marks a resample point: every span opened *directly*
under it makes a fresh head-sampling decision while keeping the parent's
``trace_id`` and causal link.  The batch driver propagates its run
context to workers as a resample point, so each file pair is an
independently sampled subtree of the one batch trace.

Span records are plain dicts (picklable, JSON-ready)::

    {"name": ..., "trace_id": ..., "span_id": ..., "parent_id": ...,
     "start": <epoch seconds>, "dur_ms": ..., "pid": ..,
     "status": "ok"|"error", "error_type": ..., "attrs": {...}}

They accumulate in a bounded process-local buffer; :func:`take_spans`
drains it (the exporters in :mod:`repro.observability.export` consume
the drained list, the batch worker ships it back in its telemetry
envelope).
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextvars import ContextVar, Token
from typing import Any, Optional

from .metrics import OBS


class TraceContext:
    """The identity a span runs under; immutable once created."""

    __slots__ = ("trace_id", "span_id", "sampled", "resample")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        sampled: bool,
        resample: bool = False,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled
        self.resample = resample

    def as_dict(self) -> dict[str, Any]:
        """A picklable envelope form (for cross-process propagation)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
            "resample": self.resample,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceContext":
        return cls(
            data["trace_id"],
            data["span_id"],
            bool(data.get("sampled", True)),
            bool(data.get("resample", False)),
        )


class _TraceState:
    """Process-wide tracing state, guarded like the metrics registry.

    ``enabled`` gates everything; ``sample_n`` is the N of ``1/N`` head
    sampling (1 = record every trace); ``buffer`` holds finished span
    records up to ``max_spans`` (drops are counted, never silent).
    """

    __slots__ = (
        "enabled",
        "sample_n",
        "max_spans",
        "buffer",
        "dropped",
        "_heads",
        "_lock",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.sample_n = 1
        self.max_spans = 100_000
        self.buffer: list[dict[str, Any]] = []
        self.dropped = 0
        self._heads = 0  # sampling decisions made so far (head counter)
        self._lock = threading.Lock()

    def head_decision(self) -> bool:
        """One head-sampling decision: deterministically every Nth head.

        The first head is always sampled, so short runs (one diff, a
        smoke batch) produce spans even under aggressive sampling.
        """
        if self.sample_n <= 1:
            return True
        with self._lock:
            n = self._heads
            self._heads += 1
        return n % self.sample_n == 0

    def record(self, rec: dict[str, Any]) -> None:
        with self._lock:
            if len(self.buffer) >= self.max_spans:
                self.dropped += 1
                return
            self.buffer.append(rec)


#: Process-wide tracing state (one per driver / worker process).
TRACE = _TraceState()

#: The context the *next* span will be parented under, per logical task.
_CTX: ContextVar[Optional[TraceContext]] = ContextVar("repro_trace_ctx", default=None)

_rand = random.Random()


def _new_trace_id() -> str:
    return f"{_rand.getrandbits(128):032x}"


def _new_span_id() -> str:
    return f"{_rand.getrandbits(64):016x}"


def parse_sample(spec: "str | int | None") -> int:
    """Parse a head-sampling spec: ``8``, ``"8"``, or ``"1/8"`` → 8.

    ``None`` or empty reads the ``OBS_SAMPLE`` environment variable and
    defaults to 1 (sample everything).

    Every malformed spec — ``"1/0"``, ``"0"``, negatives, floats,
    garbage, a bare ``"1/"`` — raises :exc:`ValueError` with one clear
    sentence naming the offending value (and ``OBS_SAMPLE`` when it came
    from the environment), so the CLI can render it as a one-line exit-2
    diagnostic and an env-sourced typo never silently samples everything
    or surfaces as an ``int()`` traceback.
    """
    source = ""
    if spec is None or spec == "":
        spec = os.environ.get("OBS_SAMPLE", "") or "1"
        source = " (from OBS_SAMPLE)"

    def bad(reason: str) -> ValueError:
        return ValueError(
            f"invalid sampling spec {spec!r}{source}: {reason}; "
            "expected a positive integer N or '1/N'"
        )

    if isinstance(spec, bool):
        raise bad("not a number")
    if isinstance(spec, int):
        n = spec
    elif isinstance(spec, str):
        text = spec.strip()
        if "/" in text:
            num, _, den = text.partition("/")
            if num.strip() != "1":
                raise bad("the numerator must be 1")
            try:
                n = int(den.strip() or "x")
            except ValueError:
                raise bad(f"{den.strip()!r} is not an integer") from None
        else:
            try:
                n = int(text)
            except ValueError:
                raise bad(f"{text!r} is not an integer") from None
    else:
        raise bad(f"unsupported type {type(spec).__name__}")
    if n < 1:
        raise bad(f"the rate must be >= 1, got {n}")
    return n


def enable_tracing(
    sample: "str | int | None" = None, max_spans: int = 100_000
) -> None:
    """Turn span tracing on (implies metrics instrumentation).

    ``sample`` is a head-sampling spec (see :func:`parse_sample`);
    unspecified, it honors ``OBS_SAMPLE=1/N`` from the environment.
    """
    TRACE.sample_n = parse_sample(sample)
    TRACE.max_spans = max_spans
    TRACE.enabled = True
    OBS.enabled = True  # spans only exist while instrumentation is on


def disable_tracing() -> None:
    """Turn tracing off (metrics stay as they are; buffer is kept)."""
    TRACE.enabled = False


def tracing_enabled() -> bool:
    return TRACE.enabled


def reset_tracing() -> None:
    """Drop buffered spans and zero the head counter (tests, forked
    workers inheriting driver state)."""
    with TRACE._lock:
        TRACE.buffer.clear()
        TRACE.dropped = 0
        TRACE._heads = 0
    _CTX.set(None)


def take_spans() -> list[dict[str, Any]]:
    """Drain and return all buffered span records."""
    with TRACE._lock:
        out = TRACE.buffer
        TRACE.buffer = []
    return out


def span_count() -> int:
    with TRACE._lock:
        return len(TRACE.buffer)


def current_context() -> Optional[dict[str, Any]]:
    """The active span's context as a picklable dict, or ``None``.

    This is what a driver puts in a task envelope so remote work is
    parented under the span that submitted it."""
    ctx = _CTX.get()
    return ctx.as_dict() if ctx is not None else None


class remote_context:
    """Adopt a propagated context for the duration of a ``with`` block.

    Used on the far side of a process boundary: the batch worker wraps
    each task chunk in ``remote_context(envelope["trace"], resample=True)``
    so its spans join the driver's trace as independently-sampled pair
    subtrees.  ``ctx=None`` is a no-op (the driver ran without tracing).
    """

    __slots__ = ("_ctx", "_resample", "_token")

    def __init__(self, ctx: Optional[dict[str, Any]], resample: bool = False) -> None:
        self._ctx = ctx
        self._resample = resample
        self._token = None

    def __enter__(self) -> "remote_context":
        if self._ctx is not None:
            adopted = TraceContext.from_dict(self._ctx)
            if self._resample:
                adopted = TraceContext(
                    adopted.trace_id, adopted.span_id, adopted.sampled, resample=True
                )
            self._token = _CTX.set(adopted)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CTX.reset(self._token)
            self._token = None


def begin_span() -> tuple[Any, Optional[TraceContext]]:
    """Open a trace node for a starting span (called by ``Span.__enter__``
    while tracing is enabled).

    Returns ``(token, ctx)``: the contextvar reset token and the new
    context — whose ``sampled`` flag says whether the closing span must
    be recorded.  Unsampled subtrees still thread a context (so deeper
    spans inherit the negative decision) but allocate no ids beyond it.
    """
    parent = _CTX.get()
    if parent is None:
        sampled = TRACE.head_decision()
        ctx = TraceContext(
            _new_trace_id() if sampled else "", _new_span_id() if sampled else "", sampled
        )
    elif parent.resample:
        sampled = TRACE.head_decision()
        ctx = TraceContext(parent.trace_id, _new_span_id() if sampled else "", sampled)
    elif parent.sampled:
        ctx = TraceContext(parent.trace_id, _new_span_id(), True)
    else:
        ctx = parent  # negative decision inherited by the whole subtree
    token = _CTX.set(ctx)
    return token, ctx


def end_span(
    token: Any,
    ctx: TraceContext,
    name: str,
    start_epoch: float,
    dur_ms: float,
    status: str,
    error_type: Optional[str],
    attrs: Optional[dict[str, Any]],
) -> None:
    """Close the trace node opened by :func:`begin_span`; record if sampled."""
    parent = None
    if ctx.sampled:
        prev = token.old_value
        if prev is Token.MISSING:
            prev = None
        if prev is not None and prev is not ctx and prev.sampled:
            parent = prev.span_id
        rec: dict[str, Any] = {
            "name": name,
            "trace_id": ctx.trace_id,
            "span_id": ctx.span_id,
            "parent_id": parent,
            "start": start_epoch,
            "dur_ms": dur_ms,
            "pid": os.getpid(),
            "status": status,
        }
        if error_type is not None:
            rec["error_type"] = error_type
        if attrs:
            rec["attrs"] = attrs
        TRACE.record(rec)
    _CTX.reset(token)
