"""Metric instruments and the process-wide registry.

Three instrument kinds, all named by dotted strings following the
``repro.<module>.<metric>`` convention (DESIGN.md "Observability"):

* :class:`Counter` — a monotonically increasing integer (events, edits,
  facts).  Increments are thread-safe: concurrent diffs running under
  ``concurrent.futures`` may publish into the same registry.
* :class:`Gauge` — a last-write-wins float (sizes, rates).
* :class:`Histogram` — a bounded reservoir of float observations with
  exact running ``count``/``total``/``max`` and approximate ``p50``/
  ``p95`` computed from the reservoir at snapshot time.  Span durations
  land here (in milliseconds, suffix ``.ms``); plain histograms may
  record any unit (e.g. ``repro.incremental.delta_size`` counts facts).

The registry is *disabled by default* and the disabled path is designed
to cost nothing: hot call sites guard on the module-level :data:`OBS`
flag object (one slotted attribute load, no dict allocation, no function
call) before touching any instrument.
"""

from __future__ import annotations

import threading
from typing import Any, Optional


class _ObsFlag:
    """The module-level enabled flag, readable with one attribute load.

    Hot paths do ``if OBS.enabled:`` — a slotted attribute access — so
    the disabled cost is a single predictable branch per *aggregate*
    operation (per diff, per patch, per stratum), never per node.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: Process-wide enabled flag.  Flip via :func:`enable` / :func:`disable`.
OBS = _ObsFlag()


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A last-write-wins float value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Float observations with exact count/total/max and reservoir
    percentiles.

    The reservoir is a ring buffer of the most recent
    :data:`MAX_SAMPLES` observations; ``count``/``total``/``max`` are
    maintained exactly regardless of how many samples were dropped.
    """

    MAX_SAMPLES = 8192

    __slots__ = ("name", "_samples", "_next", "_count", "_total", "_max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._samples: list[float] = []
        self._next = 0  # ring-buffer write position once the cap is hit
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.MAX_SAMPLES:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self.MAX_SAMPLES

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    def quantile(self, q: float) -> float:
        """Approximate quantile from the reservoir (0 when empty)."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        idx = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
        return samples[idx]

    def summary(self, samples: bool = False) -> dict[str, Any]:
        """Plain-data view; ``samples=True`` also includes the reservoir
        (the transferable form — :meth:`merge` on another process's
        histogram can then reconstruct approximate percentiles)."""
        with self._lock:
            ordered = sorted(self._samples)
            count, total, mx = self._count, self._total, self._max
            raw = list(self._samples) if samples else None
        if not ordered:
            # exact aggregates survive even with an empty reservoir (a
            # merge of a sample-less summary still counts); only the
            # percentiles degrade to 0
            out: dict[str, Any] = {
                "count": count, "total": total, "p50": 0.0, "p95": 0.0, "max": mx
            }
            if samples:
                out["samples"] = []
            return out

        def q(p: float) -> float:
            return ordered[min(len(ordered) - 1, max(0, round(p * (len(ordered) - 1))))]

        out = {
            "count": count,
            "total": total,
            "p50": q(0.50),
            "p95": q(0.95),
            "max": mx,
        }
        if samples:
            out["samples"] = raw
        return out

    def merge(self, summary: dict[str, Any]) -> None:
        """Fold another histogram's summary into this one.

        ``count``/``total``/``max`` merge exactly; the reservoir extends
        with the summary's ``samples`` (when present), capped at
        :data:`MAX_SAMPLES` — percentiles of a merged histogram are
        approximate, exactly as they are for a local one.
        """
        with self._lock:
            self._count += int(summary.get("count", 0))
            self._total += float(summary.get("total", 0.0))
            mx = float(summary.get("max", 0.0))
            if mx > self._max:
                self._max = mx
            for value in summary.get("samples") or ():
                if len(self._samples) < self.MAX_SAMPLES:
                    self._samples.append(float(value))
                else:
                    self._samples[self._next] = float(value)
                    self._next = (self._next + 1) % self.MAX_SAMPLES

    def _reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._next = 0
            self._count = 0
            self._total = 0.0
            self._max = 0.0


class MetricsRegistry:
    """Get-or-create instruments by name; snapshot and reset them all.

    A single lock guards instrument creation *and* increments: the
    instrumented code publishes aggregates (a handful of updates per
    diff/patch/stratum), so contention is negligible and the semantics
    are simply correct under threads.
    """

    __slots__ = ("_lock", "_counters", "_gauges", "_histograms", "sinks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.sinks: list[Any] = []

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.get(name)
                if c is None:
                    c = Counter(name, self._lock)
                    self._counters[name] = c
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.get(name)
                if g is None:
                    g = Gauge(name, self._lock)
                    self._gauges[name] = g
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.get(name)
                if h is None:
                    h = Histogram(name, self._lock)
                    self._histograms[name] = h
        return h

    def snapshot(self, samples: bool = False) -> dict:
        """A plain-data view of every instrument (stable key order).

        ``samples=True`` includes each histogram's reservoir — the
        transferable form a worker ships to the driver so
        :meth:`merge` preserves approximate percentiles, not just the
        exact count/total/max.
        """
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary(samples=samples)
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snap: dict) -> None:
        """Fold a snapshot (typically from another process) into this
        registry: counters add, gauges last-write-win, histograms merge
        count/total/max exactly and extend their reservoirs.  The
        cross-process aggregation primitive of the batch driver."""
        for name, value in snap.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snap.get("histograms", {}).items():
            if summary.get("count"):
                self.histogram(name).merge(summary)

    def reset(self) -> None:
        """Zero every instrument (registered objects stay valid)."""
        for c in self._counters.values():
            c._reset()
        for g in self._gauges.values():
            g._reset()
        for h in self._histograms.values():
            h._reset()

    def emit_event(
        self,
        name: str,
        start: float,
        dur_ms: float,
        epoch: float = 0.0,
        status: str = "ok",
    ) -> None:
        """Fan a span event out to every attached sink.

        ``start`` is the monotonic (``perf_counter``) origin, ``epoch``
        the wall-clock start in seconds since the Unix epoch — the
        cross-process-correlatable timestamp.
        """
        for sink in self.sinks:
            sink.event(name, start, dur_ms, epoch, status)


#: The process-wide registry all instrumented modules publish into.
REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide registry (for instrumented code and tests)."""
    return REGISTRY


def enable(*sinks: Any) -> None:
    """Turn instrumentation on, optionally attaching sinks.

    Sinks receive span events as they close (``sink.event(name, start,
    dur_ms)``) and snapshots on :func:`export` (``sink.export(snap)``).
    """
    for sink in sinks:
        if sink not in REGISTRY.sinks:
            REGISTRY.sinks.append(sink)
    OBS.enabled = True


def disable() -> None:
    """Turn instrumentation off (instruments keep their values)."""
    OBS.enabled = False


def enabled() -> bool:
    return OBS.enabled


def snapshot(samples: bool = False) -> dict:
    return REGISTRY.snapshot(samples=samples)


def merge(snap: dict) -> None:
    """Fold a snapshot from another process into the local registry."""
    REGISTRY.merge(snap)


def reset() -> None:
    """Zero all instruments and detach all sinks."""
    REGISTRY.reset()
    REGISTRY.sinks.clear()


def export() -> dict:
    """Snapshot and push the snapshot to every attached sink."""
    snap = REGISTRY.snapshot()
    for sink in REGISTRY.sinks:
        sink.export(snap)
    return snap
