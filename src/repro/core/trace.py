"""Tracing instrumentation for truediff.

For debugging grammars and understanding patches, :func:`diff_traced`
runs the same four steps as :func:`~repro.core.diff.diff` but records the
decisions along the way:

* which target subtrees were *preemptively* assigned in Step 2 (equal
  subtrees at matching positions),
* which candidates Step 3 acquired (preferred = exact copy vs any
  structural candidate),
* summary statistics: shares created, candidates acquired, reuse rate.

The trace is a plain data object; ``render()`` produces a human-readable
report (used by ``examples``/tests and handy in the REPL).

``diff_traced`` is built on the observability hooks of
:mod:`repro.core.diff`: it calls the exact same pipeline as
:func:`~repro.core.diff.diff` — generation-stamped state (no O(n)
``clear_diff_state`` sweep), the shared ``_dealias`` path, the real
Step-3 loop — with a recording :class:`~repro.core.diff.DiffStats`
threaded through, so the traced script is the plain script by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .diff import (
    DEFAULT_OPTIONS,
    DiffOptions,
    DiffStats,
    _check_source,
    _dealias_if_needed,
    _diff_prepared,
)
from .edits import EditScript
from .tree import TNode
from .uris import URIGen


@dataclass
class Acquisition:
    """One Step-3 take: source subtree reused for a target subtree."""

    src_uri: object
    dst_height: int
    tag: str
    preferred: bool  # acquired as an exact (literally equal) copy

    def __str__(self) -> str:
        kind = "exact copy" if self.preferred else "structural candidate"
        return f"take {self.tag} (height {self.dst_height}) from {self.src_uri} [{kind}]"


@dataclass
class DiffTrace:
    """Everything recorded during one traced diff."""

    source_size: int = 0
    target_size: int = 0
    shares: int = 0
    preemptive_pairs: int = 0
    acquisitions: list[Acquisition] = field(default_factory=list)
    fresh_loads: int = 0
    unloads: int = 0
    updates: int = 0
    edits: int = 0

    @property
    def reused_nodes(self) -> int:
        return self.target_size - self.fresh_loads

    @property
    def reuse_rate(self) -> float:
        return self.reused_nodes / self.target_size if self.target_size else 1.0

    def render(self) -> str:
        lines = [
            f"source: {self.source_size} nodes, target: {self.target_size} nodes",
            f"step 2: {self.shares} equivalence classes, "
            f"{self.preemptive_pairs} subtrees preemptively reused in place",
            f"step 3: {len(self.acquisitions)} subtrees acquired "
            f"({sum(a.preferred for a in self.acquisitions)} exact copies)",
        ]
        for a in self.acquisitions[:20]:
            lines.append(f"    {a}")
        if len(self.acquisitions) > 20:
            lines.append(f"    ... and {len(self.acquisitions) - 20} more")
        lines.append(
            f"step 4: {self.edits} edits "
            f"({self.fresh_loads} loads, {self.unloads} unloads, {self.updates} updates); "
            f"node reuse rate {self.reuse_rate:.1%}"
        )
        return "\n".join(lines)


def diff_traced(
    this: TNode,
    that: TNode,
    options: DiffOptions = DEFAULT_OPTIONS,
    urigen: Optional[URIGen] = None,
) -> tuple[EditScript, TNode, DiffTrace]:
    """Like :func:`~repro.core.diff.diff` but also returns a trace."""
    if urigen is None:
        urigen = this.sigs.urigen
    that = _dealias_if_needed(that, _check_source(this))
    stats = DiffStats(record_acquisitions=True)
    script, patched, _ = _diff_prepared(this, that, options, urigen, stats)
    trace = DiffTrace(
        source_size=this.size,
        target_size=that.size,
        shares=stats.shares,
        preemptive_pairs=stats.preemptive_pairs,
        acquisitions=[Acquisition(*rec) for rec in stats.acquisitions],
        # buffer counts are pre-coalescing, so compound Insert/Remove
        # edits in the script contribute their Load/Unload halves
        fresh_loads=stats.loads,
        unloads=stats.unloads,
        updates=stats.updates,
        edits=len(script),
    )
    return script, patched, trace
