"""Tracing instrumentation for truediff.

For debugging grammars and understanding patches, :func:`diff_traced`
runs the same four steps as :func:`~repro.core.diff.diff` but records the
decisions along the way:

* which target subtrees were *preemptively* assigned in Step 2 (equal
  subtrees at matching positions),
* which candidates Step 3 acquired (preferred = exact copy vs any
  structural candidate), and which acquisitions undid earlier
  assignments,
* summary statistics: shares created, candidates available, reuse rate.

The trace is a plain data object; ``render()`` produces a human-readable
report (used by ``examples``/tests and handy in the REPL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .diff import (
    DEFAULT_OPTIONS,
    DiffOptions,
    EditBuffer,
    assign_shares,
    compute_edits,
    take_tree,
)
from .edits import EditScript
from .node import ROOT_LINK, ROOT_NODE
from .registry import SubtreeRegistry
from .tree import TNode, clear_diff_state
from .uris import URIGen


@dataclass
class Acquisition:
    """One Step-3 take: source subtree reused for a target subtree."""

    src_uri: object
    dst_height: int
    tag: str
    preferred: bool  # acquired as an exact (literally equal) copy

    def __str__(self) -> str:
        kind = "exact copy" if self.preferred else "structural candidate"
        return f"take {self.tag} (height {self.dst_height}) from {self.src_uri} [{kind}]"


@dataclass
class DiffTrace:
    """Everything recorded during one traced diff."""

    source_size: int = 0
    target_size: int = 0
    shares: int = 0
    preemptive_pairs: int = 0
    acquisitions: list[Acquisition] = field(default_factory=list)
    fresh_loads: int = 0
    unloads: int = 0
    updates: int = 0
    edits: int = 0

    @property
    def reused_nodes(self) -> int:
        return self.target_size - self.fresh_loads

    @property
    def reuse_rate(self) -> float:
        return self.reused_nodes / self.target_size if self.target_size else 1.0

    def render(self) -> str:
        lines = [
            f"source: {self.source_size} nodes, target: {self.target_size} nodes",
            f"step 2: {self.shares} equivalence classes, "
            f"{self.preemptive_pairs} subtrees preemptively reused in place",
            f"step 3: {len(self.acquisitions)} subtrees acquired "
            f"({sum(a.preferred for a in self.acquisitions)} exact copies)",
        ]
        for a in self.acquisitions[:20]:
            lines.append(f"    {a}")
        if len(self.acquisitions) > 20:
            lines.append(f"    ... and {len(self.acquisitions) - 20} more")
        lines.append(
            f"step 4: {self.edits} edits "
            f"({self.fresh_loads} loads, {self.unloads} unloads, {self.updates} updates); "
            f"node reuse rate {self.reuse_rate:.1%}"
        )
        return "\n".join(lines)


def diff_traced(
    this: TNode,
    that: TNode,
    options: DiffOptions = DEFAULT_OPTIONS,
    urigen: Optional[URIGen] = None,
) -> tuple[EditScript, TNode, DiffTrace]:
    """Like :func:`~repro.core.diff.diff` but also returns a trace."""
    import heapq

    from .diff import _dealias
    from .edits import Insert, Load, Remove, Unload, Update

    if urigen is None:
        urigen = this.sigs.urigen
    this_ids = {id(n) for n in this.iter_subtree()}
    seen: set[int] = set()
    aliased = False
    for n in that.iter_subtree():
        if id(n) in this_ids or id(n) in seen:
            aliased = True
            break
        seen.add(id(n))
    if aliased:
        that = _dealias(that)

    trace = DiffTrace(source_size=this.size, target_size=that.size)
    clear_diff_state(this, that)
    reg = SubtreeRegistry()
    assign_shares(this, that, reg)
    trace.shares = len(reg)
    trace.preemptive_pairs = sum(1 for n in that.iter_subtree() if n.assigned is not None)

    # Step 3 with recording (mirrors assign_subtrees)
    counter = 0
    heap: list[tuple[int, int, TNode]] = []

    def push(t: TNode) -> None:
        nonlocal counter
        priority = -t.height if options.height_first else counter
        heapq.heappush(heap, (priority, counter, t))
        counter += 1

    push(that)
    while heap:
        level = heap[0][0]
        nexts: list[TNode] = []
        while heap and heap[0][0] == level:
            nexts.append(heapq.heappop(heap)[2])
        todo = [t for t in nexts if t.assigned is None]
        unassigned: list[TNode] = []
        if options.prefer_literal_matches:
            for t in todo:
                src = t.share.take_preferred(t)
                if src is not None:
                    trace.acquisitions.append(
                        Acquisition(src.uri, t.height, t.tag, preferred=True)
                    )
                    take_tree(reg, src, t)
                else:
                    unassigned.append(t)
        else:
            unassigned = todo
        still: list[TNode] = []
        for t in unassigned:
            src = t.share.take_any()
            if src is not None:
                trace.acquisitions.append(
                    Acquisition(src.uri, t.height, t.tag, preferred=False)
                )
                take_tree(reg, src, t)
            else:
                still.append(t)
        for t in still:
            for kid in t.kids:
                push(kid)

    buf = EditBuffer()
    patched = compute_edits(this, that, ROOT_NODE, ROOT_LINK, buf, urigen, reg.gen)
    script = buf.to_script(coalesce=options.coalesce)

    for e in script:
        if isinstance(e, (Load, Insert)):
            trace.fresh_loads += 1
        elif isinstance(e, (Unload, Remove)):
            trace.unloads += 1
        elif isinstance(e, Update):
            trace.updates += 1
    trace.edits = len(script)
    return script, patched, trace
