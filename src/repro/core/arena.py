"""Struct-of-arrays flat tree core (ROADMAP item 3).

A :class:`TreeArena` stores an entire tree in parallel flat columns
indexed by *slot* (a small int): tag ids, parent / first-kid /
next-sibling links, kid position, subtree height and size, and the two
equivalence fingerprints of every node.  The diff hot loop
(:mod:`repro.core.flatdiff`) runs entirely on these columns — integer
indices instead of pointer-chasing through :class:`~repro.core.tree.TNode`
objects — while the object tree remains available as a thin view
(the ``nodes`` column), so adapters, baselines, incremental and
robustness layers keep working unchanged.

Layout (one entry per slot; slot 0 is the virtual root):

======================  =====================================================
column                  meaning
======================  =====================================================
``tags[i]``             interned tag id (:func:`tag_id`; global intern table)
``sig[i]``              the node's :class:`~repro.core.signature.Signature`
``var[i]``              True iff the signature is variadic
``parent[i]``           parent slot, or ``NIL`` for roots
``first_kid[i]``        first kid slot in signature order, or ``NIL``
``next_sib[i]``         next sibling slot, or ``NIL``
``pos[i]``              kid position under the parent (sig index / list index)
``height[i]``           subtree height (leaves have height 1)
``size[i]``             subtree size (number of nodes)
``sfp[i]``              structural fingerprint (``TNode.structure_hash``)
``lfp[i]``              literal fingerprint (``TNode.literal_hash``)
``lits[i]``             literal tuple in signature order
``uris[i]``             the node's URI
``nodes[i]``            the ``TNode`` view, or None (MTree-backed arenas)
======================  =====================================================

Invariants:

* Slot 0 is always the virtual root (``ROOT_TAG`` / ``ROOT_URI``); the
  main tree hangs off ``first_kid[0]``.
* Sibling chains are in canonical kid order (signature order for fixed
  arity, index order for variadic nodes); ``pos`` carries each kid's
  position so a detached kid can be re-inserted at the right place.
* ``index`` maps every live URI to its slot.  Freed slots go on the
  ``free`` list and have their ``uris``/``nodes`` entries cleared.
* Fingerprints are byte-identical to the hashes :class:`TNode`
  construction computes (same payload format, same pluggable digest), so
  flat and object diffing agree on every equivalence judgment.

Incremental maintenance: an arena attached to an
:class:`~repro.core.mtree.MTree` (see :meth:`MTree.attach_arena`) is
kept in sync by :meth:`process_edit` — structural edits splice the
sibling chains in O(arity) and mark the ancestor chain *dirty*;
:meth:`reflow` then recomputes fingerprints/heights/sizes bottom-up over
the dirty region only.  A :class:`~repro.core.diff.DiffSession` instead
rolls its source arena forward with :meth:`apply_patch`, which replays a
diff-emitted script structurally and overwrites the changed slots from
the edit buffer's fresh-node record in O(changed).

The fingerprint columns hold one ``bytes`` object per slot rather than
one contiguous buffer: the per-slot digests are *also* the keys of the
share tables in Step 2, and a slot-indexed list hands them out without
slicing or copying.  :meth:`packed` exports the dense contiguous layout
(``array`` index columns plus a single fingerprint byte-buffer) for
serialization and inspection.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, Optional

from repro.observability import OBS, metrics as _metrics

from . import tree as _tree
from .edits import Attach, Detach, Load, PrimitiveEdit, Unload, Update
from .node import Link, ROOT_LINK, ROOT_TAG
from .signature import ROOT_SIGNATURE, Signature, SignatureRegistry
from .tree import TNode, _lit_fingerprint, _tag_bytes
from .uris import ROOT_URI, URI

NIL = -1

# -- global tag interning -----------------------------------------------------

_TAG_IDS: dict[str, int] = {}
_TAG_NAMES: list[str] = []


def tag_id(tag: str) -> int:
    """Intern ``tag`` into a process-global small-int id.

    Step 2's flat walk compares tags once per matched position pair, so
    the comparison must be an int equality rather than a string one.
    """
    i = _TAG_IDS.get(tag)
    if i is None:
        i = _TAG_IDS[tag] = len(_TAG_NAMES)
        _TAG_NAMES.append(tag)
    return i


def tag_name(i: int) -> str:
    return _TAG_NAMES[i]


# kid-position maps per signature (link -> position in canonical order)
_KID_POS: dict[Signature, dict[Link, int]] = {}


def _kid_pos_map(sig: Signature) -> dict[Link, int]:
    m = _KID_POS.get(sig)
    if m is None:
        m = _KID_POS[sig] = {l: p for p, (l, _) in enumerate(sig.kids)}
    return m


class ArenaError(Exception):
    """The arena is (or would become) inconsistent with its tree."""


class TreeArena:
    """A struct-of-arrays flat representation of one tree (see module doc)."""

    __slots__ = (
        "sigs",
        "tags",
        "sig",
        "var",
        "parent",
        "first_kid",
        "next_sib",
        "pos",
        "height",
        "size",
        "sfp",
        "lfp",
        "lits",
        "uris",
        "nodes",
        "index",
        "free",
        "has_duplicates",
        "_dirty",
        "_mtree",
        "_stale",
    )

    def __init__(self, sigs: SignatureRegistry) -> None:
        self.sigs = sigs
        # slot 0: the virtual root
        self.tags: list[int] = [tag_id(ROOT_TAG)]
        self.sig: list[Signature] = [ROOT_SIGNATURE]
        self.var: list[bool] = [False]
        self.parent: list[int] = [NIL]
        self.first_kid: list[int] = [NIL]
        self.next_sib: list[int] = [NIL]
        self.pos: list[int] = [0]
        self.height: list[int] = [1]
        self.size: list[int] = [1]
        self.sfp: list[bytes] = [b""]
        self.lfp: list[bytes] = [b""]
        self.lits: list[tuple[Any, ...]] = [()]
        self.uris: list[Optional[URI]] = [ROOT_URI]
        self.nodes: list[Optional[TNode]] = [None]
        self.index: dict[URI, int] = {ROOT_URI: 0}
        self.free: list[int] = []
        self.has_duplicates = False
        self._dirty: set[int] = set()
        self._mtree = None  # set by from_mtree; enables lazy reload
        self._stale = False

    def __len__(self) -> int:
        """Number of live slots (including the virtual root)."""
        return len(self.parent) - len(self.free)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_tree(cls, root: TNode, strict: bool = False) -> "TreeArena":
        """Flatten an object tree (hashes are copied, not recomputed).

        With ``strict=True`` a duplicate URI — which is what a shared
        node object produces — raises the same :class:`ValueError` as the
        object path's aliasing precheck; session source arenas require
        proper trees.  Without it, duplicates merely set
        ``has_duplicates`` (the index keeps the first occurrence), which
        is sufficient for read-only *target* arenas: the flat diff keeps
        all per-diff state in slot-indexed arrays, so sharing inside the
        target cannot alias any mutable state.
        """
        a = cls(root.sigs)
        # hot loop: bound methods and columns as locals; ~one append per
        # column per node is the whole flatten cost
        tags_append = a.tags.append
        sig_append = a.sig.append
        var_append = a.var.append
        parent_append = a.parent.append
        first_kid = a.first_kid
        fk_append = first_kid.append
        next_sib = a.next_sib
        ns_append = next_sib.append
        pos_append = a.pos.append
        height_append = a.height.append
        size_append = a.size.append
        sfp_append = a.sfp.append
        lfp_append = a.lfp.append
        lits_append = a.lits.append
        uris_append = a.uris.append
        nodes_append = a.nodes.append
        index = a.index
        tids = _TAG_IDS
        n_slots = 1
        last_kid: dict[int, int] = {}
        # (node, parent slot, kid position); LIFO + reversed = pre-order
        stack: list[tuple[TNode, int, int]] = [(root, 0, 0)]
        while stack:
            n, p, kpos = stack.pop()
            u = n.uri
            if u in index:
                if strict:
                    raise ValueError(
                        "source tree contains the same node object twice; "
                        "normalize it with TNode.unshared() before diffing"
                    )
                a.has_duplicates = True
            else:
                index[u] = n_slots
            slot = n_slots
            n_slots += 1
            sig = n.sig
            tag = sig.tag
            ti = tids.get(tag)
            if ti is None:
                ti = tag_id(tag)
            tags_append(ti)
            sig_append(sig)
            var_append(sig.variadic is not None)
            parent_append(p)
            fk_append(NIL)
            ns_append(NIL)
            pos_append(kpos)
            height_append(n.height)
            size_append(n.size)
            sfp_append(n.structure_hash)
            lfp_append(n.literal_hash)
            lits_append(n.lits)
            uris_append(u)
            nodes_append(n)
            lk = last_kid.get(p)
            if lk is None:
                first_kid[p] = slot
            else:
                next_sib[lk] = slot
            last_kid[p] = slot
            kids = n.kids
            for i in range(len(kids) - 1, -1, -1):
                stack.append((kids[i], slot, i))
        a._refresh_root_meta()
        return a

    @classmethod
    def from_mtree(cls, mtree, sigs: SignatureRegistry) -> "TreeArena":
        """Flatten an :class:`~repro.core.mtree.MTree`'s main tree,
        computing fingerprints bottom-up (the MTree carries none).

        The arena keeps a reference to the MTree so that
        :meth:`invalidate` can fall back to a full reload when the tree
        is mutated behind the edit interface (transactional rollback's
        node-identity restore).  Empty slots and detached roots are not
        represented; between complete patches the tree is closed and the
        main tree is all there is.
        """
        a = cls(sigs)
        a._mtree = mtree
        a._reload_mtree()
        return a

    def _reload_mtree(self) -> None:
        mtree = self._mtree
        if mtree is None:
            raise ArenaError("arena is stale and has no backing MTree")
        # reset to just the virtual root
        self.tags[1:] = []
        self.sig[1:] = []
        self.var[1:] = []
        self.parent[1:] = []
        self.first_kid[1:] = []
        self.next_sib[1:] = []
        self.pos[1:] = []
        self.height[1:] = []
        self.size[1:] = []
        self.sfp[1:] = []
        self.lfp[1:] = []
        self.lits[1:] = []
        self.uris[1:] = []
        self.nodes[1:] = []
        self.first_kid[0] = NIL
        self.index.clear()
        self.index[ROOT_URI] = 0
        self.free.clear()
        self._dirty.clear()
        self._stale = False
        main = mtree.root.kids.get(ROOT_LINK)
        if main is not None:
            self._load_mnode(main, 0, 0)
        self._refresh_root_meta()

    def _mnode_kids(self, n) -> list:
        """An MNode's present kids in canonical order."""
        sig = self.sigs[n.tag]
        if sig.variadic is not None:
            links = sorted(n.kids, key=int)
        else:
            links = [l for l, _ in sig.kids]
        out = []
        for p, l in enumerate(links):
            kid = n.kids.get(l)
            if kid is not None:
                out.append((p, kid))
        return out

    def _load_mnode(self, mnode, parent_slot: int, kpos: int) -> int:
        """Allocate slots for ``mnode``'s subtree; fingerprints computed
        bottom-up with the same payload format as TNode construction."""
        digest = _tree._digest
        sigs = self.sigs
        last_kid: dict[int, int] = {}
        top = None
        # (mnode, parent slot, position, slot, post)
        stack = [(mnode, parent_slot, kpos, NIL, False)]
        while stack:
            n, p, kp, slot, post = stack.pop()
            if not post:
                slot = self._alloc()
                if top is None:
                    top = slot
                sig = sigs[n.tag]
                self.tags[slot] = tag_id(n.tag)
                self.sig[slot] = sig
                self.var[slot] = sig.variadic is not None
                self.parent[slot] = p
                self.pos[slot] = kp
                self.lits[slot] = tuple(n.lits[l] for l in sig.lit_links)
                u = n.uri
                if u in self.index:
                    raise ArenaError(f"duplicate URI {u!r} in MTree")
                self.uris[slot] = u
                self.index[u] = slot
                lk = last_kid.get(p)
                if lk is None:
                    self.first_kid[p] = slot
                else:
                    self.next_sib[lk] = slot
                last_kid[p] = slot
                stack.append((n, p, kp, slot, True))
                kids = self._mnode_kids(n)
                for i in range(len(kids) - 1, -1, -1):
                    kpos_i, kid = kids[i]
                    stack.append((kid, slot, kpos_i, NIL, False))
            else:
                self._rehash_slot(slot, digest)
        return top if top is not None else NIL

    def _rehash_slot(self, i: int, digest) -> None:
        """Recompute fingerprints/height/size of slot ``i`` from its kids
        (which must be up to date).  Payloads match TNode construction
        byte for byte."""
        sfp = self.sfp
        lfp = self.lfp
        lits = self.lits[i]
        struct_parts = [_tag_bytes(tag_name(self.tags[i]))]
        lit_parts = [_lit_fingerprint(lits) if lits else b""]
        h = 0
        sz = 1
        height = self.height
        size = self.size
        k = self.first_kid[i]
        next_sib = self.next_sib
        while k != NIL:
            if height[k] > h:
                h = height[k]
            sz += size[k]
            struct_parts.append(sfp[k])
            lit_parts.append(lfp[k])
            k = next_sib[k]
        self.height[i] = h + 1
        self.size[i] = sz
        sfp[i] = digest(b"".join(struct_parts))
        lfp[i] = digest(b"".join(lit_parts))

    def _refresh_root_meta(self) -> None:
        """Recompute the virtual root's fingerprints/height/size."""
        self._rehash_slot(0, _tree._digest)

    def _alloc(self) -> int:
        free = self.free
        if free:
            i = free.pop()
            self.first_kid[i] = NIL
            self.next_sib[i] = NIL
            self.nodes[i] = None
            return i
        i = len(self.parent)
        self.tags.append(0)
        self.sig.append(ROOT_SIGNATURE)
        self.var.append(False)
        self.parent.append(NIL)
        self.first_kid.append(NIL)
        self.next_sib.append(NIL)
        self.pos.append(0)
        self.height.append(1)
        self.size.append(1)
        self.sfp.append(b"")
        self.lfp.append(b"")
        self.lits.append(())
        self.uris.append(None)
        self.nodes.append(None)
        return i

    def _free_slot(self, i: int) -> None:
        u = self.uris[i]
        if u is not None or i != 0:
            self.index.pop(u, None)
        self.uris[i] = None
        self.nodes[i] = None
        self.sfp[i] = b""
        self.lfp[i] = b""
        self.lits[i] = ()
        self.parent[i] = NIL
        self.next_sib[i] = NIL
        self._dirty.discard(i)
        self.free.append(i)

    # -- chain surgery --------------------------------------------------------

    def kid_slots(self, i: int) -> list[int]:
        out = []
        k = self.first_kid[i]
        ns = self.next_sib
        while k != NIL:
            out.append(k)
            k = ns[k]
        return out

    def _chain_remove(self, p: int, x: int) -> None:
        k = self.first_kid[p]
        if k == x:
            self.first_kid[p] = self.next_sib[x]
        else:
            while k != NIL and self.next_sib[k] != x:
                k = self.next_sib[k]
            if k == NIL:
                raise ArenaError(
                    f"slot {x} is not a kid of slot {p} (chain corrupt?)"
                )
            self.next_sib[k] = self.next_sib[x]
        self.next_sib[x] = NIL
        self.parent[x] = NIL

    def _chain_insert(self, p: int, x: int, position: int) -> None:
        """Insert ``x`` into ``p``'s kid chain at canonical ``position``."""
        pos = self.pos
        prev = NIL
        k = self.first_kid[p]
        while k != NIL and pos[k] < position:
            prev = k
            k = self.next_sib[k]
        if prev == NIL:
            self.next_sib[x] = self.first_kid[p]
            self.first_kid[p] = x
        else:
            self.next_sib[x] = self.next_sib[prev]
            self.next_sib[prev] = x
        self.parent[x] = p
        pos[x] = position

    def _link_position(self, p: int, link: Link) -> int:
        if self.var[p]:
            try:
                return int(link)
            except ValueError:
                raise ArenaError(
                    f"non-numeric link {link!r} on variadic slot {p}"
                ) from None
        m = _kid_pos_map(self.sig[p])
        try:
            return m[link]
        except KeyError:
            raise ArenaError(
                f"slot {p} ({tag_name(self.tags[p])}) has no kid link {link!r}"
            ) from None

    def _slot_of(self, uri: URI) -> int:
        try:
            return self.index[uri]
        except KeyError:
            raise ArenaError(f"URI {uri!r} is not in the arena index") from None

    # -- incremental maintenance (MTree.patch hook) ---------------------------

    def mark_dirty(self, i: int) -> None:
        """Mark ``i`` and its ancestor chain dirty (stops at the first
        already-dirty ancestor; the dirty set is upward-closed)."""
        dirty = self._dirty
        parent = self.parent
        while i != NIL and i not in dirty:
            dirty.add(i)
            i = parent[i]

    def process_edit(self, edit: PrimitiveEdit) -> None:
        """Mirror one *already validated and applied* MTree edit.

        Called by :meth:`MTree.process_edit` after the mutation
        succeeded, so no validation happens here; inconsistencies raise
        :class:`ArenaError` (they indicate the arena lost sync).
        Fingerprints are not recomputed here — the touched region is
        marked dirty and :meth:`reflow` settles it on demand.
        """
        if self._stale:
            return  # a reload is pending anyway; skip incremental work
        t = type(edit)
        if t is Detach:
            x = self._slot_of(edit.node.uri)
            p = self._slot_of(edit.parent.uri)
            if self.parent[x] != p:
                raise ArenaError(
                    f"detach of slot {x}: arena parent {self.parent[x]} != {p}"
                )
            self._chain_remove(p, x)
            self.mark_dirty(p)
        elif t is Attach:
            x = self._slot_of(edit.node.uri)
            p = self._slot_of(edit.parent.uri)
            if self.parent[x] != NIL:
                raise ArenaError(f"attach of slot {x}: already attached")
            self._chain_insert(p, x, self._link_position(p, edit.link))
            self.mark_dirty(p)
        elif t is Load:
            if edit.node.uri in self.index:
                raise ArenaError(f"load reuses live URI {edit.node.uri!r}")
            sig = self.sigs[edit.node.tag]
            i = self._alloc()
            self.tags[i] = tag_id(edit.node.tag)
            self.sig[i] = sig
            self.var[i] = sig.variadic is not None
            self.parent[i] = NIL
            self.pos[i] = 0
            given = dict(edit.lits)
            self.lits[i] = tuple(given[l] for l in sig.lit_links)
            self.uris[i] = edit.node.uri
            self.index[edit.node.uri] = i
            variadic = sig.variadic is not None
            last = NIL
            for link, kuri in edit.kids:
                k = self._slot_of(kuri)
                if self.parent[k] != NIL:
                    raise ArenaError(
                        f"load kid {kuri!r} is not a detached root"
                    )
                self.parent[k] = i
                self.pos[k] = (
                    int(link) if variadic else _kid_pos_map(sig)[link]
                )
                if last == NIL:
                    self.first_kid[i] = k
                else:
                    self.next_sib[last] = k
                last = k
            self.mark_dirty(i)
        elif t is Unload:
            i = self._slot_of(edit.node.uri)
            if self.parent[i] != NIL:
                raise ArenaError(f"unload of slot {i}: still attached")
            k = self.first_kid[i]
            while k != NIL:
                nxt = self.next_sib[k]
                self.parent[k] = NIL
                self.next_sib[k] = NIL
                k = nxt
            self.first_kid[i] = NIL
            self._free_slot(i)
        elif t is Update:
            i = self._slot_of(edit.node.uri)
            links = self.sig[i].lit_links
            given = dict(edit.new_lits)
            self.lits[i] = tuple(
                given.get(l, old) for l, old in zip(links, self.lits[i])
            )
            self.mark_dirty(i)
        else:  # pragma: no cover - defensive
            raise ArenaError(f"unknown edit kind {t.__name__}")

    def invalidate(self) -> None:
        """The backing tree was mutated outside the edit interface; the
        next read reloads from the MTree (or fails without one)."""
        self._stale = True

    def reflow(self) -> None:
        """Recompute fingerprints/heights/sizes over the dirty region,
        bottom-up, descending only into dirty kids."""
        if self._stale:
            self._reload_mtree()
            return
        dirty = self._dirty
        if not dirty:
            return
        digest = _tree._digest
        parent = self.parent
        first_kid = self.first_kid
        next_sib = self.next_sib
        # the dirty set is upward-closed, so its roots have no dirty parent
        roots = [i for i in dirty if parent[i] == NIL or parent[i] not in dirty]
        stack: list[tuple[int, bool]] = [(r, False) for r in roots]
        while stack:
            i, post = stack.pop()
            if post:
                self._rehash_slot(i, digest)
                # the object view (if any) no longer matches
                if i != 0:
                    self.nodes[i] = None
                continue
            stack.append((i, True))
            k = first_kid[i]
            while k != NIL:
                if k in dirty:
                    stack.append((k, False))
                k = next_sib[k]
        dirty.clear()

    # -- session roll-forward -------------------------------------------------

    def apply_patch(self, script, fresh: list[TNode]) -> None:
        """Roll this (session source) arena forward across one diff round.

        ``script`` is the just-emitted edit script and ``fresh`` the edit
        buffer's record of every TNode object Step 4 created (loads and
        spine rebuilds).  Structural edits are replayed on the chains;
        then every fresh node overwrites its slot's content columns —
        ``fresh`` covers exactly the slots whose fingerprints, literals,
        heights or sizes changed, because the object patch rebuilds every
        ancestor of a change.  O(script + changed); raises
        :class:`ArenaError` on any inconsistency (the session then falls
        back to a full rebuild).
        """
        for edit in script.primitives():
            t = type(edit)
            if t is Update:
                continue  # covered by the fresh-node overwrite
            self.process_edit(edit)
        index = self.index
        sfp = self.sfp
        lfp = self.lfp
        height = self.height
        size = self.size
        lits = self.lits
        nodes = self.nodes
        for n in fresh:
            i = index.get(n.uri)
            if i is None:
                raise ArenaError(f"fresh node URI {n.uri!r} has no slot")
            sfp[i] = n.structure_hash
            lfp[i] = n.literal_hash
            height[i] = n.height
            size[i] = n.size
            lits[i] = n.lits
            nodes[i] = n
        # replaying a well-typed script leaves no pending recomputation
        # beyond the virtual root (all changed slots were overwritten)
        self._dirty.clear()
        self._refresh_root_meta()

    # -- reads ----------------------------------------------------------------

    def root_slot(self) -> int:
        """The main tree's root slot, or ``NIL`` for an empty tree."""
        if self._stale:
            self._reload_mtree()
        return self.first_kid[0]

    def preorder_slots(self, start: Optional[int] = None) -> Iterator[int]:
        """Pre-order slot traversal (kids in canonical order)."""
        if start is None:
            start = self.root_slot()
        if start == NIL:
            return
        first_kid = self.first_kid
        next_sib = self.next_sib
        stack = [start]
        while stack:
            i = stack.pop()
            yield i
            kids = []
            k = first_kid[i]
            while k != NIL:
                kids.append(k)
                k = next_sib[k]
            stack.extend(reversed(kids))

    def tree_fingerprint(self) -> bytes:
        """One digest over the whole tree: URIs plus both per-node
        fingerprints in pre-order.  Two arenas have equal fingerprints
        iff they represent the same tree with the same URIs — the
        equality the incremental-consistency property tests check."""
        if self._stale:
            self._reload_mtree()
        if self._dirty:
            self.reflow()
        r = self.first_kid[0]
        if r == NIL:
            return _tree._digest(b"<empty>")
        parts: list[bytes] = []
        uris = self.uris
        sfp = self.sfp
        lfp = self.lfp
        for i in self.preorder_slots(r):
            parts.append(f"{uris[i]!r}\x00".encode("utf8"))
            parts.append(sfp[i])
            parts.append(lfp[i])
        return _tree._digest(b"".join(parts))

    def packed(self) -> dict[str, Any]:
        """The dense struct-of-arrays export: live slots of the main tree
        in pre-order, index columns as C-int ``array`` buffers, and all
        fingerprints in one contiguous byte-buffer (``sfp . lfp`` per
        node, fixed record stride).  This is the serialization-level
        layout; the working columns stay as plain lists because CPython
        boxes ``array`` reads back into ints on every access, which
        benchmarks slower on the diff hot loop.
        """
        if self._stale:
            self._reload_mtree()
        if self._dirty:
            self.reflow()
        order = list(self.preorder_slots())
        remap = {slot: i for i, slot in enumerate(order)}
        remap[NIL] = NIL
        remap[0] = NIL  # the virtual root is not exported
        fps = bytearray()
        for slot in order:
            fps += self.sfp[slot]
            fps += self.lfp[slot]
        stride = (len(fps) // len(order)) if order else 0
        return {
            "tags": array("q", (self.tags[s] for s in order)),
            "parent": array("q", (remap[self.parent[s]] for s in order)),
            "first_kid": array("q", (remap[self.first_kid[s]] for s in order)),
            "next_sib": array("q", (remap[self.next_sib[s]] for s in order)),
            "pos": array("q", (self.pos[s] for s in order)),
            "height": array("q", (self.height[s] for s in order)),
            "size": array("q", (self.size[s] for s in order)),
            "uris": tuple(self.uris[s] for s in order),
            "fingerprints": bytes(fps),
            "fingerprint_stride": stride,
            "tag_names": tuple(_TAG_NAMES),
        }

    def verify_consistent(self) -> list[str]:
        """Full from-scratch consistency check (tests / debugging).

        Recomputes every reachable slot's fingerprints, height and size
        and cross-checks chains, parents, positions, the URI index and
        the object view.  Returns a list of problem descriptions (empty
        means consistent).
        """
        if self._stale:
            self._reload_mtree()
        if self._dirty:
            self.reflow()
        problems: list[str] = []
        digest = _tree._digest
        reachable: set[int] = set()
        # iterative post-order recomputation over the main tree
        order: list[int] = []
        for i in self.preorder_slots(0):
            reachable.add(i)
            order.append(i)
        recomputed: dict[int, tuple[bytes, bytes, int, int]] = {}
        for i in reversed(order):
            lits = self.lits[i]
            struct_parts = [_tag_bytes(tag_name(self.tags[i]))]
            lit_parts = [_lit_fingerprint(lits) if lits else b""]
            h = 0
            sz = 1
            prev_pos = None
            k = self.first_kid[i]
            while k != NIL:
                if self.parent[k] != i:
                    problems.append(f"slot {k}: parent {self.parent[k]} != {i}")
                if prev_pos is not None and self.pos[k] <= prev_pos:
                    problems.append(f"slot {k}: kid positions not increasing")
                prev_pos = self.pos[k]
                s, l, kh, ks = recomputed[k]
                struct_parts.append(s)
                lit_parts.append(l)
                if kh > h:
                    h = kh
                sz += ks
                k = self.next_sib[k]
            s = digest(b"".join(struct_parts))
            l = digest(b"".join(lit_parts))
            recomputed[i] = (s, l, h + 1, sz)
            if self.sfp[i] != s:
                problems.append(f"slot {i}: structural fingerprint stale")
            if self.lfp[i] != l:
                problems.append(f"slot {i}: literal fingerprint stale")
            if self.height[i] != h + 1:
                problems.append(
                    f"slot {i}: height {self.height[i]} != {h + 1}"
                )
            if self.size[i] != sz:
                problems.append(f"slot {i}: size {self.size[i]} != {sz}")
            n = self.nodes[i]
            if n is not None:
                if n.uri != self.uris[i]:
                    problems.append(
                        f"slot {i}: node view URI {n.uri!r} != {self.uris[i]!r}"
                    )
                if n.structure_hash != self.sfp[i] or n.literal_hash != self.lfp[i]:
                    problems.append(f"slot {i}: node view hashes stale")
        if not self.has_duplicates:
            for u, i in self.index.items():
                if i >= len(self.uris) or self.uris[i] != u:
                    problems.append(f"index entry {u!r} -> {i} is stale")
            for i in reachable:
                u = self.uris[i]
                if self.index.get(u) != i:
                    problems.append(f"slot {i}: URI {u!r} not indexed to it")
        return problems


# -- the TNode-side cache -----------------------------------------------------


def arena_of(tree: TNode) -> TreeArena:
    """The (read-only) flat view of an object tree, cached on the root.

    The warm diff loop hits the same target tree several times per
    session round-robin; caching makes the flatten a once-per-tree cost.
    Safe because flat diffing keeps all per-diff state in external
    arrays — a cached target arena is never mutated.
    """
    try:
        a = tree._arena
        if a is not None:
            return a
    except AttributeError:
        pass
    a = TreeArena.from_tree(tree)
    tree._arena = a
    if OBS.enabled:
        _metrics().counter("repro.arena.flattens").inc()
    return a
