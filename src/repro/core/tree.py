"""Diffable trees (Section 4.1).

:class:`TNode` is the datatype-generic tree representation truediff works
on: an immutable node driven by a constructor :class:`~repro.core.signature.Signature`,
carrying a URI and two equivalence hashes.

* :attr:`TNode.structure_hash` encodes *structural equivalence*: two trees
  are structurally equivalent iff they are equal except for literal values
  (same shape, same tags).
* :attr:`TNode.literal_hash` encodes *literal equivalence*: equality except
  for node tags (same literals, in the same tree positions).
* :attr:`TNode.identity_hash` combines both — equal iff the trees are equal.

The hashes are computed bottom-up at construction time, so every node
costs O(1) amortized hashing work (Theorem 4.1, Step 1).  The digest
function is pluggable (:func:`set_hash_scheme`): the default ``blake2b``
scheme uses 16-byte BLAKE2b digests (fast, short dictionary keys), while
the paper-faithful ``sha256`` scheme remains selectable for ablations.
Trees that are diffed against each other must be built under the same
scheme — digests of different schemes never compare equal.

The mutable fields :attr:`share` and :attr:`assigned` hold per-diff state
(Steps 2-3 of truediff).  They are *generation-stamped*: every
:class:`~repro.core.registry.SubtreeRegistry` draws a fresh generation
number from :func:`next_diff_generation`, and a node's ``share``/
``assigned`` values are only meaningful while ``node.gen`` equals the
current registry's generation.  Stale state from earlier diffs is simply
ignored, so :func:`~repro.core.diff.diff` never has to sweep the trees
with :func:`clear_diff_state` (kept for tests and manual use).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from hashlib import blake2b, sha256
from typing import Any, Callable, Iterator, Optional, Sequence, TYPE_CHECKING

from .node import Link, Node, Tag
from .signature import Signature, SignatureError, SignatureRegistry
from .uris import URI, URIGen

if TYPE_CHECKING:  # pragma: no cover
    from .registry import SubtreeShare


# -- hash schemes (Step 1) ---------------------------------------------------


def _blake2b_digest(data: bytes) -> bytes:
    return blake2b(data, digest_size=16).digest()


def _sha256_digest(data: bytes) -> bytes:
    return sha256(data).digest()


#: Available digest functions, keyed by scheme name.
HASH_SCHEMES: dict[str, Callable[[bytes], bytes]] = {
    "blake2b": _blake2b_digest,
    "sha256": _sha256_digest,
}

_hash_scheme_name = "blake2b"
_digest = HASH_SCHEMES[_hash_scheme_name]


def get_hash_scheme() -> str:
    """Name of the digest scheme used for newly constructed nodes."""
    return _hash_scheme_name


def set_hash_scheme(name: str) -> str:
    """Select the digest scheme for newly constructed nodes.

    Returns the previous scheme name.  Existing nodes keep the hashes
    they were built with; do not mix schemes within one diff.
    """
    global _hash_scheme_name, _digest
    if name not in HASH_SCHEMES:
        raise ValueError(
            f"unknown hash scheme {name!r}; expected one of {sorted(HASH_SCHEMES)}"
        )
    global _EMPTY_LIT_DIGEST
    previous = _hash_scheme_name
    _hash_scheme_name = name
    _digest = HASH_SCHEMES[name]
    # construction fast-path caches hold digests of the outgoing scheme
    _LEAF_STRUCT_DIGESTS.clear()
    _EMPTY_LIT_DIGEST = _digest(b"")
    return previous


@contextmanager
def hash_scheme(name: str) -> Iterator[None]:
    """Context manager: build trees under ``name``, then restore."""
    previous = set_hash_scheme(name)
    try:
        yield
    finally:
        set_hash_scheme(previous)


# -- per-diff generations ----------------------------------------------------

_generations = itertools.count(1)


def next_diff_generation() -> int:
    """A fresh diff-generation number (drawn once per SubtreeRegistry).

    Node generation stamps start at 0, so generation numbers from this
    counter never collide with a freshly constructed node.
    """
    return next(_generations)


# Tag bytes are interned: hashing runs once per node, tags repeat constantly.
_TAG_BYTES: dict[str, bytes] = {}

# Leaf construction fast path: a leaf's structure hash depends on its tag
# alone, and its literal hash on the literal fingerprint alone — both are
# memoizable, which matters because roughly half of a parsed tree's nodes
# are leaves.  Keyed per current scheme; cleared by set_hash_scheme.
_LEAF_STRUCT_DIGESTS: dict[str, bytes] = {}
_EMPTY_LIT_DIGEST = _digest(b"")


def _tag_bytes(tag: Tag) -> bytes:
    b = _TAG_BYTES.get(tag)
    if b is None:
        b = tag.encode("utf8") + b"\x00"
        _TAG_BYTES[tag] = b
    return b


# -- type-aware literal equivalence ------------------------------------------
#
# Python's ``==``/``hash`` conflate values across types (``1 == True``,
# ``0 == False``, ``1.0 == 1``), so literal equivalence must never be
# plain ``==`` on the literal tuples: ``diff(x = 1, x = True)`` would
# judge the trees literal-equivalent, return an *empty* script, and
# patching would silently produce the wrong program — violating the
# reproduction guarantee of Theorem 4.1.  Both the literal digest
# computed at construction time and every literal-equality check in the
# edit-emission path (Step 4) therefore tag each literal with its
# concrete type.


def literal_key(value: Any) -> Any:
    """A hashable key equal iff two literal values are interchangeable in
    a source document: identical concrete type and identical value.

    Floats and complex numbers compare by ``repr``, which separates
    ``0.0`` from ``-0.0`` and makes ``nan`` equal to itself (both matter
    for unparse fidelity; plain ``==`` gets both wrong).  Any other
    self-unequal (NaN-like) value likewise falls back to ``repr``.
    Tuples and frozensets are keyed elementwise, so nested conflations
    (``(1,)`` vs ``(True,)``) are caught too.
    """
    t = type(value)
    if t is tuple:
        return (t, tuple(literal_key(v) for v in value))
    if t is frozenset:
        return (t, frozenset(literal_key(v) for v in value))
    if t is float or t is complex:
        return (t, repr(value))
    if value != value:  # NaN-like values of other types
        return (t, repr(value))
    return (t, value)


def literal_eq(a: Any, b: Any) -> bool:
    """Type-aware equality of two literal values (see :func:`literal_key`)."""
    return a is b or literal_key(a) == literal_key(b)


def lits_equal(a: Sequence[Any], b: Sequence[Any]) -> bool:
    """Type-aware equality of two literal tuples (elementwise
    :func:`literal_eq`; ``is`` short-circuits the common shared case)."""
    if a is b:
        return True
    return len(a) == len(b) and all(
        x is y or literal_key(x) == literal_key(y) for x, y in zip(a, b)
    )


def _lit_fingerprint(lits: tuple[Any, ...]) -> bytes:
    """The literal-hash payload of one node's literal tuple.

    ``repr`` alone already separates every builtin conflation pair
    (``repr(1)`` vs ``repr(True)``), but the concrete type names are
    included as well so custom literal types whose reprs collide across
    types cannot be conflated either.
    """
    tags = ",".join(type(v).__name__ for v in lits)
    return f"{tags}\x00{lits!r}".encode("utf8")


class TNode:
    """An immutable, hashed, URI-carrying tree node.

    Construct via a :class:`~repro.core.adt.Grammar` constructor or
    :meth:`TNode.build`; kids and literals are stored in signature order.
    """

    __slots__ = (
        "sigs",
        "sig",
        "uri",
        "kids",
        "lits",
        "height",
        "size",
        "structure_hash",
        "literal_hash",
        "share",
        "assigned",
        "gen",
        "_node",
        "_kid_items",
        "_lit_items",
        "_identity_hash",
        "_arena",
    )

    def __init__(
        self,
        sigs: SignatureRegistry,
        sig: Signature,
        kids: Sequence["TNode"],
        lits: Sequence[Any],
        uri: URI,
        validate: bool = True,
    ) -> None:
        """Build a node; Step 1 of truediff (the equivalence hashes) runs
        here.  ``validate=False`` skips the arity/sort/literal checks for
        trusted internal rebuilds (hashes are always computed)."""
        kids = tuple(kids)
        lits = tuple(lits)
        if validate:
            self._validate(sigs, sig, kids, lits)
        self.sigs = sigs
        self.sig = sig
        self.uri = uri
        self.kids = kids
        self.lits = lits
        if kids:
            # height/size (Step 1 metadata) and the hash payloads in one
            # pass; one-shot hashing is measurably faster than update()-style
            height = 0
            size = 1
            struct_parts = [_tag_bytes(sig.tag)]
            lit_parts = [_lit_fingerprint(lits) if lits else b""]
            for k in kids:
                if k.height > height:
                    height = k.height
                size += k.size
                struct_parts.append(k.structure_hash)
                lit_parts.append(k.literal_hash)
            self.height = height + 1
            self.size = size
            digest = _digest
            # structural equivalence: tags + shape, ignoring literal values
            self.structure_hash = digest(b"".join(struct_parts))
            # literal equivalence: literal values, ignoring tags
            self.literal_hash = digest(b"".join(lit_parts))
        else:
            # leaf fast path: both payloads collapse (no kid hashes to
            # join), and the structural digest is shared per tag
            self.height = 1
            self.size = 1
            tag = sig.tag
            sh = _LEAF_STRUCT_DIGESTS.get(tag)
            if sh is None:
                sh = _LEAF_STRUCT_DIGESTS[tag] = _digest(_tag_bytes(tag))
            self.structure_hash = sh
            self.literal_hash = (
                _digest(_lit_fingerprint(lits)) if lits else _EMPTY_LIT_DIGEST
            )
        # per-diff mutable state (Steps 2-3), valid only for `gen`
        self.share: Optional["SubtreeShare"] = None
        self.assigned: Optional["TNode"] = None
        self.gen = 0

    @staticmethod
    def _validate(
        sigs: SignatureRegistry,
        sig: Signature,
        kids: tuple["TNode", ...],
        lits: tuple[Any, ...],
    ) -> None:
        if sig.variadic is not None:
            for i, kid in enumerate(kids):
                if not sigs.is_subtype(kid.sig.result, sig.variadic):
                    raise SignatureError(
                        f"{sig.tag}[{i}]: kid of sort {kid.sig.result} "
                        f"is not <: {sig.variadic}"
                    )
        else:
            if len(kids) != len(sig.kids):
                raise SignatureError(
                    f"{sig.tag} expects {len(sig.kids)} kids, got {len(kids)}"
                )
            for (link, expected), kid in zip(sig.kids, kids):
                if not sigs.is_subtype(kid.sig.result, expected):
                    raise SignatureError(
                        f"{sig.tag}.{link}: kid of sort {kid.sig.result} is not <: {expected}"
                    )
        if len(lits) != len(sig.lits):
            raise SignatureError(
                f"{sig.tag} expects {len(sig.lits)} literals, got {len(lits)}"
            )
        for (link, base), value in zip(sig.lits, lits):
            if not base.check(value):
                raise SignatureError(f"{sig.tag}.{link}: literal {value!r} is not a {base}")

    @property
    def identity_hash(self) -> bytes:
        """Equal iff the trees are equal (structurally and literally)."""
        try:
            return self._identity_hash
        except AttributeError:
            h = self._identity_hash = self.structure_hash + self.literal_hash
            return h

    # -- construction -------------------------------------------------------

    @staticmethod
    def build(
        sigs: SignatureRegistry,
        tag: Tag,
        kids: Sequence["TNode"],
        lits: Sequence[Any],
        urigen: URIGen,
    ) -> "TNode":
        """Build a node with a fresh URI."""
        return TNode(sigs, sigs[tag], kids, lits, urigen.fresh())

    def with_lits(self, lits: Sequence[Any]) -> "TNode":
        """A copy of this node (same URI, same kids) with new literals."""
        return TNode(self.sigs, self.sig, self.kids, lits, self.uri)

    def with_kids(self, kids: Sequence["TNode"]) -> "TNode":
        """A copy of this node (same URI, same literals) with new kids."""
        return TNode(self.sigs, self.sig, kids, self.lits, self.uri)

    # -- accessors ----------------------------------------------------------

    @property
    def tag(self) -> Tag:
        return self.sig.tag

    @property
    def node(self) -> Node:
        """The ``TagURI`` reference of this node (cached; edit emission
        asks for it several times per changed node)."""
        try:
            return self._node
        except AttributeError:
            n = self._node = Node(self.sig.tag, self.uri)
            return n

    @property
    def kid_links(self) -> tuple[Link, ...]:
        return self.sig.kid_links_for(len(self.kids))

    @property
    def kid_items(self) -> tuple[tuple[Link, "TNode"], ...]:
        # cached: rebuilt tuples on every access were a measurable cost in
        # EditBuffer.load/unload and Step 4, which hit this per node per diff
        try:
            return self._kid_items
        except AttributeError:
            items = self._kid_items = tuple(zip(self.kid_links, self.kids))
            return items

    @property
    def lit_items(self) -> tuple[tuple[Link, Any], ...]:
        try:
            return self._lit_items
        except AttributeError:
            items = self._lit_items = tuple(zip(self.sig.lit_links, self.lits))
            return items

    def kid(self, link: Link) -> "TNode":
        if self.sig.variadic is not None:
            if link.isdigit() and int(link) < len(self.kids):
                return self.kids[int(link)]
            raise KeyError(link)
        for l, k in zip(self.sig.kid_links, self.kids):
            if l == link:
                return k
        raise KeyError(link)

    def lit(self, link: Link) -> Any:
        for l, v in zip(self.sig.lit_links, self.lits):
            if l == link:
                return v
        raise KeyError(link)

    def unshared(self, urigen: Optional[URIGen] = None) -> "TNode":
        """Normalize a structure-shared tree into a proper tree.

        Immutable trees make it easy to use the same node object at two
        positions; truediff source trees, however, need unique node objects
        (URIs name distinct mutable positions).  The first occurrence of a
        shared node keeps its identity; later occurrences are rebuilt with
        fresh URIs.

        Iterative (explicit stack): deep trees must not hit the recursion
        limit.
        """
        if urigen is None:
            urigen = self.sigs.urigen
        seen: set[int] = set()
        # (node, dup) for pre-visits, (node, dup) re-pushed as post-visits
        stack: list[tuple[TNode, bool, bool]] = [(self, False, False)]
        results: list[TNode] = []
        while stack:
            n, post, dup = stack.pop()
            if not post:
                dup = id(n) in seen
                seen.add(id(n))
                stack.append((n, True, dup))
                for k in reversed(n.kids):
                    stack.append((k, False, False))
            else:
                cnt = len(n.kids)
                if cnt:
                    kids = results[-cnt:]
                    del results[-cnt:]
                else:
                    kids = []
                if not dup and all(a is b for a, b in zip(kids, n.kids)):
                    results.append(n)
                else:
                    results.append(
                        TNode(
                            n.sigs, n.sig, kids, n.lits,
                            urigen.fresh() if dup else n.uri,
                            validate=False,
                        )
                    )
        return results[0]

    def with_canonical_uris(self, start: int = 1) -> "TNode":
        """Renumber all URIs in pre-order starting at ``start``.

        Parsing assigns globally fresh URIs, so two parses of the same
        document get different URIs.  For exchanging edit scripts across
        processes (the CLI's ``diff``/``apply``), both sides canonicalize
        the source document first; script URIs then denote pre-order
        positions.  Fresh URIs for Load edits must start above
        ``start + size``.

        Iterative: URIs are assigned at pre-visit (pre-order), nodes are
        rebuilt at post-visit.
        """
        counter = start
        stack: list[tuple[TNode, bool, int]] = [(self, False, 0)]
        results: list[TNode] = []
        while stack:
            n, post, uri = stack.pop()
            if not post:
                uri = counter
                counter += 1
                stack.append((n, True, uri))
                for k in reversed(n.kids):
                    stack.append((k, False, 0))
            else:
                cnt = len(n.kids)
                if cnt:
                    kids = results[-cnt:]
                    del results[-cnt:]
                else:
                    kids = []
                results.append(
                    TNode(n.sigs, n.sig, kids, n.lits, uri, validate=False)
                )
        return results[0]

    # -- traversal ------------------------------------------------------------

    def iter_subtree(self) -> Iterator["TNode"]:
        """Pre-order traversal: this node first, then all descendants."""
        stack = [self]
        while stack:
            n = stack.pop()
            yield n
            stack.extend(reversed(n.kids))

    def iter_proper_subtrees(self) -> Iterator["TNode"]:
        """All descendants, excluding this node itself."""
        it = self.iter_subtree()
        next(it)
        return it

    # -- equivalences ---------------------------------------------------------

    def structurally_equivalent(self, other: "TNode") -> bool:
        """Equal except for literal values (Section 4.1)."""
        return self.structure_hash == other.structure_hash

    def literally_equivalent(self, other: "TNode") -> bool:
        """Equal except for node tags (Section 4.1)."""
        return self.literal_hash == other.literal_hash

    def tree_equal(self, other: "TNode") -> bool:
        """Full equality (structure and literals; URIs ignored)."""
        return (
            self.structure_hash == other.structure_hash
            and self.literal_hash == other.literal_hash
        )

    # -- conversions ------------------------------------------------------------

    def to_tuple(self, with_uris: bool = False) -> tuple:
        """The same snapshot format as :meth:`MNode.to_tuple`."""
        kids = tuple(
            (l, k.to_tuple(with_uris)) for l, k in self.kid_items
        )
        lits = tuple(sorted(self.lit_items, key=lambda kv: kv[0]))
        head = (self.tag, self.uri) if with_uris else self.tag
        return (head, tuple(sorted(kids, key=lambda kv: kv[0])), lits)

    def pretty(self) -> str:
        parts = [f"{v!r}" for v in self.lits]
        parts += [k.pretty() for k in self.kids]
        inner = ", ".join(parts)
        return f"{self.tag}_{self.uri}({inner})" if parts else f"{self.tag}_{self.uri}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TNode({self.pretty()})"


def subtree_ids(tree: TNode) -> set[int]:
    """The ``id()`` of every node object in ``tree`` (tight loop; the
    aliasing precheck of :func:`~repro.core.diff.diff` is built on this)."""
    ids: set[int] = set()
    add = ids.add
    stack = [tree]
    pop = stack.pop
    extend = stack.extend
    while stack:
        n = pop()
        add(id(n))
        extend(n.kids)
    return ids


def clear_diff_state(*trees: TNode) -> None:
    """Reset the per-diff mutable fields of all nodes in the given trees.

    :func:`~repro.core.diff.diff` no longer needs this (per-diff state is
    generation-stamped and lazily invalidated); it remains for tests and
    for manual experiments with the step functions.
    """
    for tree in trees:
        stack = [tree]
        while stack:
            n = stack.pop()
            n.share = None
            n.assigned = None
            n.gen = 0
            stack.extend(n.kids)


def tnode_to_mtree(tree: TNode) -> "MTree":
    """Build the :class:`~repro.core.mtree.MTree` corresponding to ``tree``
    (attached under the pre-defined root).  Iterative (deep trees)."""
    from .mtree import MNode, MTree
    from .node import ROOT_LINK

    out = MTree()
    index = out.index
    # (tnode, kids-dict of the parent MNode, link under which to attach)
    stack: list[tuple[TNode, dict, str]] = [(tree, out.root.kids, ROOT_LINK)]
    while stack:
        n, parent_kids, link = stack.pop()
        m = MNode(n.node, {}, dict(n.lit_items))
        index[n.uri] = m
        parent_kids[link] = m
        for l, k in reversed(n.kid_items):
            stack.append((k, m.kids, l))
    return out
