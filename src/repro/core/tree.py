"""Diffable trees (Section 4.1).

:class:`TNode` is the datatype-generic tree representation truediff works
on: an immutable node driven by a constructor :class:`~repro.core.signature.Signature`,
carrying a URI and two cryptographic hashes.

* :attr:`TNode.structure_hash` encodes *structural equivalence*: two trees
  are structurally equivalent iff they are equal except for literal values
  (same shape, same tags).
* :attr:`TNode.literal_hash` encodes *literal equivalence*: equality except
  for node tags (same literals, in the same tree positions).
* :attr:`TNode.identity_hash` combines both — equal iff the trees are equal.

The hashes are SHA-256 digests computed bottom-up at construction time, so
every node costs O(1) amortized hashing work (Theorem 4.1, Step 1).

The mutable fields :attr:`share` and :attr:`assigned` hold per-diff state
(Steps 2-3 of truediff); :func:`clear_diff_state` resets them, which the
top-level :func:`~repro.core.diff.diff` does before every run.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator, Optional, Sequence, TYPE_CHECKING

from .node import Link, Node, Tag
from .signature import Signature, SignatureError, SignatureRegistry
from .uris import URI, URIGen

if TYPE_CHECKING:  # pragma: no cover
    from .registry import SubtreeShare


# Tag bytes are interned: hashing runs once per node, tags repeat constantly.
_TAG_BYTES: dict[str, bytes] = {}


def _tag_bytes(tag: Tag) -> bytes:
    b = _TAG_BYTES.get(tag)
    if b is None:
        b = tag.encode("utf8") + b"\x00"
        _TAG_BYTES[tag] = b
    return b


class TNode:
    """An immutable, hashed, URI-carrying tree node.

    Construct via a :class:`~repro.core.adt.Grammar` constructor or
    :meth:`TNode.build`; kids and literals are stored in signature order.
    """

    __slots__ = (
        "sigs",
        "sig",
        "uri",
        "kids",
        "lits",
        "height",
        "size",
        "structure_hash",
        "literal_hash",
        "share",
        "assigned",
    )

    def __init__(
        self,
        sigs: SignatureRegistry,
        sig: Signature,
        kids: Sequence["TNode"],
        lits: Sequence[Any],
        uri: URI,
        validate: bool = True,
    ) -> None:
        """Build a node; Step 1 of truediff (the equivalence hashes) runs
        here.  ``validate=False`` skips the arity/sort/literal checks for
        trusted internal rebuilds (hashes are always computed)."""
        kids = tuple(kids)
        lits = tuple(lits)
        if validate:
            self._validate(sigs, sig, kids, lits)
        self.sigs = sigs
        self.sig = sig
        self.uri = uri
        self.kids = kids
        self.lits = lits
        # height/size (Step 1 metadata) and the hash payloads in one pass;
        # one-shot hashing is measurably faster than update()-style
        height = 0
        size = 1
        struct_parts = [_tag_bytes(sig.tag)]
        lit_parts = [repr(lits).encode("utf8") if lits else b""]
        for k in kids:
            if k.height > height:
                height = k.height
            size += k.size
            struct_parts.append(k.structure_hash)
            lit_parts.append(k.literal_hash)
        self.height = height + 1
        self.size = size
        # structural equivalence: tags + shape, ignoring literal values
        self.structure_hash = hashlib.sha256(b"".join(struct_parts)).digest()
        # literal equivalence: literal values, ignoring tags
        self.literal_hash = hashlib.sha256(b"".join(lit_parts)).digest()
        # per-diff mutable state (Steps 2-3)
        self.share: Optional["SubtreeShare"] = None
        self.assigned: Optional["TNode"] = None

    @staticmethod
    def _validate(
        sigs: SignatureRegistry,
        sig: Signature,
        kids: tuple["TNode", ...],
        lits: tuple[Any, ...],
    ) -> None:
        if sig.variadic is not None:
            for i, kid in enumerate(kids):
                if not sigs.is_subtype(kid.sig.result, sig.variadic):
                    raise SignatureError(
                        f"{sig.tag}[{i}]: kid of sort {kid.sig.result} "
                        f"is not <: {sig.variadic}"
                    )
        else:
            if len(kids) != len(sig.kids):
                raise SignatureError(
                    f"{sig.tag} expects {len(sig.kids)} kids, got {len(kids)}"
                )
            for (link, expected), kid in zip(sig.kids, kids):
                if not sigs.is_subtype(kid.sig.result, expected):
                    raise SignatureError(
                        f"{sig.tag}.{link}: kid of sort {kid.sig.result} is not <: {expected}"
                    )
        if len(lits) != len(sig.lits):
            raise SignatureError(
                f"{sig.tag} expects {len(sig.lits)} literals, got {len(lits)}"
            )
        for (link, base), value in zip(sig.lits, lits):
            if not base.check(value):
                raise SignatureError(f"{sig.tag}.{link}: literal {value!r} is not a {base}")

    @property
    def identity_hash(self) -> bytes:
        """Equal iff the trees are equal (structurally and literally)."""
        return self.structure_hash + self.literal_hash

    # -- construction -------------------------------------------------------

    @staticmethod
    def build(
        sigs: SignatureRegistry,
        tag: Tag,
        kids: Sequence["TNode"],
        lits: Sequence[Any],
        urigen: URIGen,
    ) -> "TNode":
        """Build a node with a fresh URI."""
        return TNode(sigs, sigs[tag], kids, lits, urigen.fresh())

    def with_lits(self, lits: Sequence[Any]) -> "TNode":
        """A copy of this node (same URI, same kids) with new literals."""
        return TNode(self.sigs, self.sig, self.kids, lits, self.uri)

    def with_kids(self, kids: Sequence["TNode"]) -> "TNode":
        """A copy of this node (same URI, same literals) with new kids."""
        return TNode(self.sigs, self.sig, kids, self.lits, self.uri)

    # -- accessors ----------------------------------------------------------

    @property
    def tag(self) -> Tag:
        return self.sig.tag

    @property
    def node(self) -> Node:
        """The ``TagURI`` reference of this node."""
        return Node(self.sig.tag, self.uri)

    @property
    def kid_links(self) -> tuple[Link, ...]:
        return self.sig.kid_links_for(len(self.kids))

    @property
    def kid_items(self) -> tuple[tuple[Link, "TNode"], ...]:
        return tuple(zip(self.kid_links, self.kids))

    @property
    def lit_items(self) -> tuple[tuple[Link, Any], ...]:
        return tuple(zip(self.sig.lit_links, self.lits))

    def kid(self, link: Link) -> "TNode":
        if self.sig.variadic is not None:
            if link.isdigit() and int(link) < len(self.kids):
                return self.kids[int(link)]
            raise KeyError(link)
        for l, k in zip(self.sig.kid_links, self.kids):
            if l == link:
                return k
        raise KeyError(link)

    def lit(self, link: Link) -> Any:
        for l, v in zip(self.sig.lit_links, self.lits):
            if l == link:
                return v
        raise KeyError(link)

    def unshared(self, urigen: Optional[URIGen] = None) -> "TNode":
        """Normalize a structure-shared tree into a proper tree.

        Immutable trees make it easy to use the same node object at two
        positions; truediff source trees, however, need unique node objects
        (URIs name distinct mutable positions).  The first occurrence of a
        shared node keeps its identity; later occurrences are rebuilt with
        fresh URIs.
        """
        if urigen is None:
            urigen = self.sigs.urigen
        seen: set[int] = set()

        def go(n: TNode) -> TNode:
            dup = id(n) in seen
            seen.add(id(n))
            kids = [go(k) for k in n.kids]
            if not dup and all(a is b for a, b in zip(kids, n.kids)):
                return n
            return TNode(
                n.sigs, n.sig, kids, n.lits, urigen.fresh() if dup else n.uri,
                validate=False,
            )

        return go(self)

    def with_canonical_uris(self, start: int = 1) -> "TNode":
        """Renumber all URIs in pre-order starting at ``start``.

        Parsing assigns globally fresh URIs, so two parses of the same
        document get different URIs.  For exchanging edit scripts across
        processes (the CLI's ``diff``/``apply``), both sides canonicalize
        the source document first; script URIs then denote pre-order
        positions.  Fresh URIs for Load edits must start above
        ``start + size``.
        """
        counter = [start]

        def go(n: TNode) -> TNode:
            uri = counter[0]
            counter[0] += 1
            return TNode(
                n.sigs, n.sig, [go(k) for k in n.kids], n.lits, uri, validate=False
            )

        return go(self)

    # -- traversal ------------------------------------------------------------

    def iter_subtree(self) -> Iterator["TNode"]:
        """Pre-order traversal: this node first, then all descendants."""
        stack = [self]
        while stack:
            n = stack.pop()
            yield n
            stack.extend(reversed(n.kids))

    def iter_proper_subtrees(self) -> Iterator["TNode"]:
        """All descendants, excluding this node itself."""
        it = self.iter_subtree()
        next(it)
        return it

    # -- equivalences ---------------------------------------------------------

    def structurally_equivalent(self, other: "TNode") -> bool:
        """Equal except for literal values (Section 4.1)."""
        return self.structure_hash == other.structure_hash

    def literally_equivalent(self, other: "TNode") -> bool:
        """Equal except for node tags (Section 4.1)."""
        return self.literal_hash == other.literal_hash

    def tree_equal(self, other: "TNode") -> bool:
        """Full equality (structure and literals; URIs ignored)."""
        return self.identity_hash == other.identity_hash

    # -- conversions ------------------------------------------------------------

    def to_tuple(self, with_uris: bool = False) -> tuple:
        """The same snapshot format as :meth:`MNode.to_tuple`."""
        kids = tuple(
            (l, k.to_tuple(with_uris)) for l, k in self.kid_items
        )
        lits = tuple(sorted(self.lit_items, key=lambda kv: kv[0]))
        head = (self.tag, self.uri) if with_uris else self.tag
        return (head, tuple(sorted(kids, key=lambda kv: kv[0])), lits)

    def pretty(self) -> str:
        parts = [f"{v!r}" for v in self.lits]
        parts += [k.pretty() for k in self.kids]
        inner = ", ".join(parts)
        return f"{self.tag}_{self.uri}({inner})" if parts else f"{self.tag}_{self.uri}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TNode({self.pretty()})"


def clear_diff_state(*trees: TNode) -> None:
    """Reset the per-diff mutable fields of all nodes in the given trees."""
    for tree in trees:
        for n in tree.iter_subtree():
            n.share = None
            n.assigned = None


def tnode_to_mtree(tree: TNode) -> "MTree":
    """Build the :class:`~repro.core.mtree.MTree` corresponding to ``tree``
    (attached under the pre-defined root)."""
    from .mtree import MNode, MTree
    from .node import ROOT_LINK

    out = MTree()

    def go(n: TNode) -> MNode:
        m = MNode(n.node, {}, dict(n.lit_items))
        out.index[n.uri] = m
        for link, kid in n.kid_items:
            m.kids[link] = go(kid)
        return m

    out.root.kids[ROOT_LINK] = go(tree)
    return out
