"""URI allocation for tree nodes.

Every node of a :class:`~repro.core.tree.TNode` tree carries a unique URI
(Section 2 of the paper).  Edit scripts refer to nodes by URI, which is what
makes truechange patches concise: a patch only mentions the URIs of changed
nodes instead of spelling out paths from the root.

The paper writes URIs as subscripts (``Add1``, ``Sub2``, ...).  We use plain
integers.  The pre-defined root node of every :class:`~repro.core.mtree.MTree`
has the distinguished URI ``None`` (the paper uses ``null``).
"""

from __future__ import annotations

import itertools
from typing import Optional

# A URI is an integer for ordinary nodes, or None for the pre-defined root.
URI = Optional[int]

#: URI of the pre-defined root node (the paper's ``null``).
ROOT_URI: URI = None


class URIGen:
    """A monotone source of fresh URIs.

    Each :class:`~repro.core.adt.Grammar` owns one generator so that all
    trees built against the same grammar have globally unique node URIs.
    ``Load`` edits produced by truediff draw fresh URIs from the same
    generator, preserving uniqueness across patched trees.
    """

    __slots__ = ("_counter",)

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def fresh(self) -> int:
        """Return a URI that has never been returned before."""
        return next(self._counter)

    def fresh_many(self, n: int) -> list[int]:
        """Return ``n`` distinct fresh URIs."""
        return list(itertools.islice(self._counter, n))
