"""Subtree shares (Section 4.2).

A :class:`SubtreeShare` is the pool of *available* source subtrees for one
structural-equivalence class: all subtrees with the same
:attr:`~repro.core.tree.TNode.structure_hash` are assigned the same share.
Source subtrees registered in a share are resources that Step 3 of truediff
may acquire at most once; target subtrees merely *point* at their share to
find reuse candidates.

The :class:`SubtreeRegistry` interns shares by structure hash — the role of
the paper's hash trie.  Python dictionaries hash the digest in constant
time, giving the same O(1) share lookup.

Each registry owns a fresh *diff generation* number: assigning a share
stamps the node with that generation and lazily invalidates any
``share``/``assigned`` state left over from earlier diffs.  This is what
lets :func:`~repro.core.diff.diff` skip the O(n) ``clear_diff_state``
sweep that used to precede every run.
"""

from __future__ import annotations

from typing import Optional

from .tree import TNode, next_diff_generation
from .uris import URI


class SubtreeShare:
    """The available source subtrees of one structural equivalence class.

    Availability is tracked in insertion order so :meth:`take_any` prefers
    the subtree encountered first (leftmost in the source tree).  A second
    index keyed by literal hash serves :meth:`take_preferred`, which selects
    an *exact* copy (structurally and literally equivalent, hence equal).
    """

    __slots__ = ("_available", "_by_literal")

    def __init__(self) -> None:
        # uri -> tree, insertion-ordered (dicts preserve insertion order)
        self._available: dict[URI, TNode] = {}
        # literal hash -> (uri -> tree)
        self._by_literal: dict[bytes, dict[URI, TNode]] = {}

    def __len__(self) -> int:
        return len(self._available)

    @property
    def is_empty(self) -> bool:
        return not self._available

    def register_available(self, tree: TNode) -> None:
        """Make a source subtree available for reuse."""
        if tree.uri in self._available:
            return
        self._available[tree.uri] = tree
        self._by_literal.setdefault(tree.literal_hash, {})[tree.uri] = tree

    def deregister(self, tree: TNode) -> None:
        """Withdraw a source subtree (it was acquired or consumed)."""
        if self._available.pop(tree.uri, None) is not None:
            bucket = self._by_literal.get(tree.literal_hash)
            if bucket is not None:
                bucket.pop(tree.uri, None)
                if not bucket:
                    del self._by_literal[tree.literal_hash]

    def take_preferred(self, that: TNode) -> Optional[TNode]:
        """Acquire an exact copy of ``that`` (literally equivalent candidate),
        or None.  The returned tree is *not* yet deregistered — Step 3's
        ``take_tree`` deregisters it together with all of its subtrees."""
        bucket = self._by_literal.get(that.literal_hash)
        if not bucket:
            return None
        return next(iter(bucket.values()))

    def take_any(self) -> Optional[TNode]:
        """Acquire any available candidate (first registered), or None."""
        if not self._available:
            return None
        return next(iter(self._available.values()))


class SubtreeRegistry:
    """Interns :class:`SubtreeShare` objects by structure hash (Step 2).

    ``gen`` is this registry's diff generation: a node's ``share`` and
    ``assigned`` fields are only meaningful while ``node.gen == gen``.
    """

    __slots__ = ("_shares", "gen")

    def __init__(self) -> None:
        self._shares: dict[bytes, SubtreeShare] = {}
        self.gen = next_diff_generation()

    def assign_share(self, tree: TNode) -> SubtreeShare:
        """Set (and return) ``tree.share``; trees are assigned the same share
        iff they are structurally equivalent.  Stamps the node with this
        registry's generation, invalidating state from earlier diffs."""
        if tree.gen == self.gen:
            share = tree.share
            if share is not None:
                return share
        share = self._shares.get(tree.structure_hash)
        if share is None:
            share = SubtreeShare()
            self._shares[tree.structure_hash] = share
        tree.share = share
        tree.assigned = None
        tree.gen = self.gen
        return share

    def assign_share_and_register(self, tree: TNode) -> None:
        """``assignShareAndRegisterAvailable`` from the paper's Step 2."""
        self.assign_share(tree).register_available(tree)

    def __len__(self) -> int:
        return len(self._shares)
