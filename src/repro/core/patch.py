"""Functional patch application for immutable trees.

``diff`` already returns the patched tree, but consumers that *receive*
an edit script (over the wire, from a history store) need to apply it to
a :class:`~repro.core.tree.TNode` they hold.  The standard semantics
works on mutable :class:`~repro.core.mtree.MTree`; this module closes the
loop:

* :func:`mtree_to_tnode` — rebuild an immutable tree from a patched
  MTree, preserving URIs;
* :func:`apply_script` — the composition ``TNode → MTree → patch →
  TNode``: a pure function from tree and script to tree.
"""

from __future__ import annotations

from typing import Optional

from repro.observability import span as _span

from .edits import EditScript
from .mtree import MNode, MTree, PatchError
from .signature import SignatureRegistry
from .tree import TNode, tnode_to_mtree


def mnode_to_tnode(node: MNode, sigs: SignatureRegistry) -> TNode:
    """Rebuild an immutable tree from a (complete) mutable subtree.

    Raises :class:`PatchError` if the subtree contains empty slots — only
    closed trees have an immutable counterpart.  Iterative post-order, so
    arbitrarily deep patched trees rebuild without ``RecursionError``.
    """
    # pre frames carry (node, None); post frames (node, (sig, kid_links))
    stack: list[tuple[MNode, Optional[tuple]]] = [(node, None)]
    results: list[TNode] = []
    while stack:
        n, info = stack.pop()
        if info is None:
            sig = sigs[n.tag]
            kid_links = (
                tuple(str(i) for i in range(len(n.kids)))
                if sig.is_variadic
                else sig.kid_links
            )
            stack.append((n, (sig, kid_links)))
            for link in reversed(kid_links):
                kid = n.kids.get(link)
                if kid is None:
                    raise PatchError(f"{n.node} has an empty slot {link!r}")
                stack.append((kid, None))
        else:
            sig, kid_links = info
            cnt = len(kid_links)
            if cnt:
                kids = results[-cnt:]
                del results[-cnt:]
            else:
                kids = []
            lits = [n.lits[link] for link in sig.lit_links]
            results.append(TNode(sigs, sig, kids, lits, n.uri))
    return results[0]


def mtree_to_tnode(tree: MTree, sigs: SignatureRegistry) -> TNode:
    """The immutable counterpart of the tree attached under the root."""
    main = tree.main
    if main is None:
        raise PatchError("the tree is empty")
    return mnode_to_tnode(main, sigs)


def apply_script(
    tree: TNode,
    script: EditScript,
    sigs: Optional[SignatureRegistry] = None,
    *,
    atomic: bool = False,
    verify: bool = False,
) -> TNode:
    """Apply an edit script to an immutable tree, returning the patched
    immutable tree.  The input tree is not modified.

    ``atomic=True`` applies the script transactionally (pre-flight linear
    typecheck plus rollback-on-failure, see
    :func:`repro.robustness.patch_atomic`); ``verify=True`` additionally
    runs the tree-integrity verifier on the patched mutable tree before
    rebuilding the immutable result.  Because the input tree is never
    mutated, the rollback only affects the intermediate
    :class:`~repro.core.mtree.MTree` — the flags exist so recipients of
    untrusted scripts get structured, indexed errors instead of partially
    converted state.
    """
    sigs = sigs if sigs is not None else tree.sigs
    with _span("repro.patch.apply_script"):
        mtree = tnode_to_mtree(tree)
        mtree.patch(script, atomic=atomic, sigs=sigs, verify=verify)
        return mtree_to_tnode(mtree, sigs)
