"""The paper's primary contribution: truechange + truediff.

* :mod:`repro.core.edits`, :mod:`repro.core.typecheck`,
  :mod:`repro.core.mtree` — the linearly typed edit script language
  truechange (Section 3): syntax, linear type system, standard semantics.
* :mod:`repro.core.tree`, :mod:`repro.core.registry`,
  :mod:`repro.core.diff` — the truediff algorithm (Section 4).
* :mod:`repro.core.adt` — the ``@diffable`` datatype front-end (Section 5).
"""

import sys as _sys

# Real-world documents produce deep trees (a long statement list is a long
# cons chain), and the diffing/patching recursions follow tree height.
# CPython 3.11+ no longer burns C stack on Python-to-Python calls, so a
# generous recursion limit is safe.
if _sys.getrecursionlimit() < 1_000_000:
    _sys.setrecursionlimit(1_000_000)

from .adt import Constructor, ConsListSorts, Grammar, ListSorts, OptionSorts, diffable
from .arena import ArenaError, TreeArena, arena_of
from .diff import (
    DEFAULT_OPTIONS,
    DiffOptions,
    DiffSession,
    DiffStats,
    EditBuffer,
    diff,
    validate_script,
)
from .flatdiff import diff_flat_prepared
from .edits import (
    Attach,
    Detach,
    Edit,
    EditScript,
    Insert,
    Load,
    Remove,
    Unload,
    Update,
)
from .gen import GenerationError, TreeGenerator, random_tree
from .invert import invert_edit, invert_script
from .merge import MergeConflict, MergeResult, find_conflicts, merge_scripts
from .patch import apply_script, mnode_to_tnode, mtree_to_tnode
from .serialize import (
    SerializationError,
    edit_from_dict,
    edit_to_dict,
    script_from_json,
    script_to_json,
)
from .mtree import (
    ArityMismatchError,
    ComplianceError,
    DetachMismatchError,
    MNode,
    MTree,
    PatchError,
    SlotOccupiedError,
    TypingViolation,
    UnknownLinkError,
    UnknownUriError,
    UriConflictError,
    check_syntactic_compliance,
    mnode_well_typed,
    mtree_well_typed,
)
from .node import Link, Node, ROOT_LINK, ROOT_NODE, ROOT_TAG, Tag
from .registry import SubtreeRegistry, SubtreeShare
from .signature import ROOT_SIGNATURE, Signature, SignatureError, SignatureRegistry
from .trace import Acquisition, DiffTrace, diff_traced
from .tree import (
    HASH_SCHEMES,
    TNode,
    clear_diff_state,
    get_hash_scheme,
    hash_scheme,
    next_diff_generation,
    set_hash_scheme,
    subtree_ids,
    tnode_to_mtree,
)
from .typecheck import (
    CLOSED_STATE,
    EditTypeError,
    INITIAL_STATE,
    LinearState,
    assert_well_typed,
    check_edit,
    check_script,
    is_well_typed,
    is_well_typed_initializing,
)
from .types import (
    ANY,
    LIT_ANY,
    LIT_BOOL,
    LIT_FLOAT,
    LIT_INT,
    LIT_STR,
    LitType,
    ROOT_SORT,
    Type,
    lit_type,
    sort,
)
from .uris import ROOT_URI, URI, URIGen

__all__ = [
    "ANY",
    "ArenaError",
    "ArityMismatchError",
    "Attach",
    "CLOSED_STATE",
    "DetachMismatchError",
    "SlotOccupiedError",
    "UnknownLinkError",
    "UnknownUriError",
    "UriConflictError",
    "ComplianceError",
    "Constructor",
    "DEFAULT_OPTIONS",
    "Detach",
    "DiffOptions",
    "DiffSession",
    "DiffStats",
    "Edit",
    "EditBuffer",
    "EditScript",
    "EditTypeError",
    "Grammar",
    "INITIAL_STATE",
    "Insert",
    "LIT_ANY",
    "LIT_BOOL",
    "LIT_FLOAT",
    "LIT_INT",
    "LIT_STR",
    "LinearState",
    "Link",
    "ListSorts",
    "LitType",
    "Load",
    "MNode",
    "MTree",
    "Node",
    "OptionSorts",
    "PatchError",
    "ROOT_LINK",
    "ROOT_NODE",
    "ROOT_SIGNATURE",
    "ROOT_SORT",
    "ROOT_TAG",
    "ROOT_URI",
    "Remove",
    "Signature",
    "SignatureError",
    "SignatureRegistry",
    "SubtreeRegistry",
    "SubtreeShare",
    "TNode",
    "Tag",
    "TreeArena",
    "Type",
    "TypingViolation",
    "URI",
    "URIGen",
    "Unload",
    "Update",
    "arena_of",
    "assert_well_typed",
    "Acquisition",
    "DiffTrace",
    "check_edit",
    "check_script",
    "check_syntactic_compliance",
    "clear_diff_state",
    "diff",
    "diff_flat_prepared",
    "diff_traced",
    "validate_script",
    "HASH_SCHEMES",
    "get_hash_scheme",
    "hash_scheme",
    "next_diff_generation",
    "set_hash_scheme",
    "subtree_ids",
    "diffable",
    "GenerationError",
    "TreeGenerator",
    "apply_script",
    "edit_from_dict",
    "edit_to_dict",
    "invert_edit",
    "invert_script",
    "MergeConflict",
    "MergeResult",
    "find_conflicts",
    "merge_scripts",
    "mnode_to_tnode",
    "mtree_to_tnode",
    "random_tree",
    "script_from_json",
    "script_to_json",
    "SerializationError",
    "is_well_typed",
    "is_well_typed_initializing",
    "lit_type",
    "mnode_well_typed",
    "mtree_well_typed",
    "sort",
    "tnode_to_mtree",
]
