"""Serialization of truechange edit scripts.

Edit scripts are the unit of transmission in the paper's use cases
(version control, incremental computing across processes), so they need a
stable wire format.  This module provides a JSON encoding that round-trips
every edit operation, including compound edits, and preserves literal
values of the JSON-representable types (str, int, float, bool, None) plus
tuples (encoded as tagged lists, since Python AST literals contain
tuples).
"""

from __future__ import annotations

import json
import math
from typing import Any

from .edits import (
    Attach,
    Detach,
    Edit,
    EditScript,
    Insert,
    Kids,
    Lits,
    Load,
    Remove,
    Unload,
    Update,
)
from .node import Node


class SerializationError(Exception):
    """The value or document cannot be (de)serialized."""


#: Non-finite floats by their tag-encoded wire name (strict JSON has no
#: ``NaN``/``Infinity`` tokens, so they travel as ``{"$float": "nan"}``).
_NONFINITE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def _encode_float(value: float) -> Any:
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return {"$float": "nan"}
    return {"$float": "inf" if value > 0 else "-inf"}


def _encode_value(value: Any) -> Any:
    if isinstance(value, float):
        # bools/ints pass through below; non-finite floats must be
        # tag-encoded or json.dumps emits NaN/Infinity tokens that
        # strict JSON parsers reject
        return _encode_float(value)
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, tuple):
        return {"$tuple": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"$list": [_encode_value(v) for v in value]}
    if isinstance(value, bytes):
        return {"$bytes": value.hex()}
    if isinstance(value, complex):
        return {"$complex": [_encode_float(value.real), _encode_float(value.imag)]}
    if value is Ellipsis:
        return {"$ellipsis": True}
    raise SerializationError(f"unsupported literal value {value!r}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "$tuple" in value:
            return tuple(_decode_value(v) for v in value["$tuple"])
        if "$list" in value:
            return [_decode_value(v) for v in value["$list"]]
        if "$bytes" in value:
            return bytes.fromhex(value["$bytes"])
        if "$complex" in value:
            real, imag = value["$complex"]
            return complex(_decode_value(real), _decode_value(imag))
        if "$float" in value:
            try:
                return _NONFINITE[value["$float"]]
            except (KeyError, TypeError):
                raise SerializationError(
                    f"unknown $float payload {value['$float']!r}"
                ) from None
        if "$ellipsis" in value:
            return Ellipsis
        raise SerializationError(f"unknown tagged value {value!r}")
    return value


def _encode_node(node: Node) -> list:
    return [node.tag, node.uri]


def _decode_node(data: Any) -> Node:
    tag, uri = data
    return Node(tag, uri)


def _encode_kids(kids: Kids) -> list:
    return [[link, uri] for link, uri in kids]


def _decode_kids(data: Any) -> Kids:
    return tuple((link, uri) for link, uri in data)


def _encode_lits(lits: Lits) -> list:
    return [[link, _encode_value(v)] for link, v in lits]


def _decode_lits(data: Any) -> Lits:
    return tuple((link, _decode_value(v)) for link, v in data)


def edit_to_dict(edit: Edit) -> dict:
    """Encode one edit as a JSON-compatible dict."""
    if isinstance(edit, Detach):
        return {
            "op": "detach",
            "node": _encode_node(edit.node),
            "link": edit.link,
            "parent": _encode_node(edit.parent),
        }
    if isinstance(edit, Attach):
        return {
            "op": "attach",
            "node": _encode_node(edit.node),
            "link": edit.link,
            "parent": _encode_node(edit.parent),
        }
    if isinstance(edit, Load):
        return {
            "op": "load",
            "node": _encode_node(edit.node),
            "kids": _encode_kids(edit.kids),
            "lits": _encode_lits(edit.lits),
        }
    if isinstance(edit, Unload):
        return {
            "op": "unload",
            "node": _encode_node(edit.node),
            "kids": _encode_kids(edit.kids),
            "lits": _encode_lits(edit.lits),
        }
    if isinstance(edit, Update):
        return {
            "op": "update",
            "node": _encode_node(edit.node),
            "old": _encode_lits(edit.old_lits),
            "new": _encode_lits(edit.new_lits),
        }
    if isinstance(edit, Insert):
        return {
            "op": "insert",
            "node": _encode_node(edit.node),
            "kids": _encode_kids(edit.kids),
            "lits": _encode_lits(edit.lits),
            "link": edit.link,
            "parent": _encode_node(edit.parent),
        }
    if isinstance(edit, Remove):
        return {
            "op": "remove",
            "node": _encode_node(edit.node),
            "link": edit.link,
            "parent": _encode_node(edit.parent),
            "kids": _encode_kids(edit.kids),
            "lits": _encode_lits(edit.lits),
        }
    raise SerializationError(f"unknown edit kind {type(edit).__name__}")


def edit_from_dict(data: dict) -> Edit:
    """Decode one edit from its dict encoding."""
    try:
        op = data["op"]
        if op == "detach":
            return Detach(_decode_node(data["node"]), data["link"], _decode_node(data["parent"]))
        if op == "attach":
            return Attach(_decode_node(data["node"]), data["link"], _decode_node(data["parent"]))
        if op == "load":
            return Load(_decode_node(data["node"]), _decode_kids(data["kids"]), _decode_lits(data["lits"]))
        if op == "unload":
            return Unload(_decode_node(data["node"]), _decode_kids(data["kids"]), _decode_lits(data["lits"]))
        if op == "update":
            return Update(_decode_node(data["node"]), _decode_lits(data["old"]), _decode_lits(data["new"]))
        if op == "insert":
            return Insert(
                _decode_node(data["node"]),
                _decode_kids(data["kids"]),
                _decode_lits(data["lits"]),
                data["link"],
                _decode_node(data["parent"]),
            )
        if op == "remove":
            return Remove(
                _decode_node(data["node"]),
                data["link"],
                _decode_node(data["parent"]),
                _decode_kids(data["kids"]),
                _decode_lits(data["lits"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed edit document: {exc}") from None
    raise SerializationError(f"unknown edit op {data.get('op')!r}")


def script_to_json(script: EditScript, indent: int | None = None) -> str:
    """Serialize an edit script to strict JSON text.

    ``allow_nan=False`` makes strictness structural: if any encoding path
    ever leaked a non-finite float, ``json.dumps`` would raise instead of
    silently emitting ``NaN``/``Infinity`` tokens that strict parsers
    (``json.loads`` with a rejecting ``parse_constant``, most non-Python
    consumers) cannot read.
    """
    return json.dumps(
        {"format": "truechange/1", "edits": [edit_to_dict(e) for e in script]},
        indent=indent,
        allow_nan=False,
    )


def script_from_json(text: str) -> EditScript:
    """Deserialize an edit script from JSON text."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("format") != "truechange/1":
        raise SerializationError("not a truechange/1 document")
    return EditScript(edit_from_dict(e) for e in doc.get("edits", []))
