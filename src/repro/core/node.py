"""Node references, tags, and links (Figure 1 of the paper).

A :class:`Node` is a pair of a constructor symbol (:data:`Tag`) and a
:data:`~repro.core.uris.URI`; the paper writes it ``TagURI`` with the URI as
a subscript.  A :data:`Link` names the edge between a parent node and one of
its children or literals — it usually corresponds to the name of the
parent's constructor argument (``"e1"``, ``"name"``, ...).
"""

from __future__ import annotations

from typing import NamedTuple

from .uris import ROOT_URI, URI

# Tags are constructor symbols; the paper writes them without quotes.
Tag = str

# Links are edge names; the paper writes them with quotes.
Link = str

#: Tag of the pre-defined root node every tree hangs off.
ROOT_TAG: Tag = "<Root>"

#: The single link of the pre-defined root node.
ROOT_LINK: Link = "<RootLink>"


class Node(NamedTuple):
    """A node reference ``TagURI``: a constructor symbol plus a URI."""

    tag: Tag
    uri: URI

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tag}_{self.uri}"


#: The pre-defined root node reference ``RootTag_null``.
ROOT_NODE = Node(ROOT_TAG, ROOT_URI)
