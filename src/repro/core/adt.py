"""Declaring diffable algebraic data types (Section 5).

The Scala implementation of truediff uses a ``@diffable`` macro to derive
the datatype-generic machinery for each case class.  In Python, the
:class:`Grammar` DSL plays the same role: it declares sorts and
constructors, derives signatures into a shared
:class:`~repro.core.signature.SignatureRegistry`, and hands back plain
callables that build :class:`~repro.core.tree.TNode` trees::

    g = Grammar()
    Exp = g.sort("Exp")
    Num = g.constructor("Num", Exp, lits=[("n", LIT_INT)])
    Add = g.constructor("Add", Exp, kids=[("e1", Exp), ("e2", Exp)])
    tree = Add(Num(1), Num(2))

Sequence-valued arguments (``Seq[T]`` in the Scala artifact) are encoded
as cons-lists so that every constructor keeps a fixed arity and the linear
type system of Figure 3 applies unchanged::

    ExpList = g.list_of(Exp)             # declares Cons[Exp] / Nil[Exp]
    tree = ExpList.build([Num(1), Num(2)])

Optional arguments (``T?``) are encoded analogously with ``Some[T]`` /
``None[T]`` via :meth:`Grammar.option_of`.

A decorator front-end :func:`diffable` mirrors the Scala macro's surface
syntax for users who prefer class declarations::

    g = Grammar()

    @g.diffable(sort="Exp")
    class Var:
        name: str          # literal (str/int/float/bool annotations)

    @g.diffable(sort="Exp")
    class Add:
        e1: "Exp"          # kid of sort Exp (string annotations are sorts)
        e2: "Exp"

    t = Add(Var("x"), Var("y"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence, Union

from .node import Link, Tag
from .signature import Signature, SignatureError, SignatureRegistry
from .tree import TNode
from .types import (
    ANY,
    LIT_ANY,
    LIT_BOOL,
    LIT_FLOAT,
    LIT_INT,
    LIT_STR,
    LitType,
    Type,
    sort as mk_sort,
)

KidSpec = Sequence[tuple[Link, Type]]
LitSpec = Sequence[tuple[Link, LitType]]

_PY_LIT_TYPES = {
    int: LIT_INT,
    str: LIT_STR,
    float: LIT_FLOAT,
    bool: LIT_BOOL,
    object: LIT_ANY,
}


class Constructor:
    """A callable that builds trees for one declared constructor."""

    __slots__ = ("grammar", "sig")

    def __init__(self, grammar: "Grammar", sig: Signature) -> None:
        self.grammar = grammar
        self.sig = sig

    @property
    def tag(self) -> Tag:
        return self.sig.tag

    def __call__(self, *args: Any, **kwargs: Any) -> TNode:
        """Build a node.  Positional arguments are kids followed by
        literals (in declaration order); keywords may name either."""
        n_kids = len(self.sig.kids)
        n_lits = len(self.sig.lits)
        slots: dict[Link, Any] = {}
        order = list(self.sig.kid_links) + list(self.sig.lit_links)
        if len(args) > len(order):
            raise SignatureError(
                f"{self.tag} takes at most {len(order)} arguments, got {len(args)}"
            )
        for link, value in zip(order, args):
            slots[link] = value
        for link, value in kwargs.items():
            if link in slots:
                raise SignatureError(f"{self.tag}: duplicate argument {link!r}")
            if link not in order:
                raise SignatureError(f"{self.tag}: unknown argument {link!r}")
            slots[link] = value
        missing = [l for l in order if l not in slots]
        if missing:
            raise SignatureError(f"{self.tag}: missing arguments {missing}")
        kids = [self._coerce_kid(slots[l]) for l in self.sig.kid_links]
        lits = [slots[l] for l in self.sig.lit_links]
        return TNode(
            self.grammar.sigs, self.sig, kids, lits, self.grammar.urigen.fresh()
        )

    def _coerce_kid(self, value: Any) -> TNode:
        if isinstance(value, TNode):
            return value
        raise SignatureError(f"{self.tag}: kid argument {value!r} is not a tree")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<constructor {self.sig}>"


@dataclass(frozen=True)
class ListSorts:
    """The flat (variadic) encoding of ``Seq[T]``: one ``List[T]`` node
    whose kids are the elements, reachable via index links ``"0"``, ``"1"``,
    ... — the Scala artifact's ``DiffableList``.

    A flat list keeps element reuse local: inserting or removing an
    element replaces only the list node itself while elements are moved,
    whereas a cons encoding (:class:`ConsListSorts`, kept for the ablation
    benchmarks) exposes every suffix as a stealable subtree, which lets
    Step 3 reuse a *shifted* spine and degrade patch conciseness.
    """

    grammar: "Grammar"
    sort: Type
    tag: str

    def build(self, items: Iterable[TNode]) -> TNode:
        """Build a list node over the given elements."""
        sig = self.grammar.sigs[self.tag]
        return TNode(
            self.grammar.sigs, sig, list(items), (), self.grammar.urigen.fresh()
        )

    def elements(self, tree: TNode) -> list[TNode]:
        """The elements of a list node."""
        if tree.tag != self.tag:
            raise SignatureError(f"not a {self.tag} node: {tree.tag}")
        return list(tree.kids)


@dataclass(frozen=True)
class ConsListSorts:
    """The cons-list encoding of ``Seq[T]`` (ablation baseline)."""

    sort: Type
    cons: Constructor
    nil: Constructor

    def build(self, items: Iterable[TNode]) -> TNode:
        """Fold a Python sequence into a cons-list tree."""
        acc = self.nil()
        for item in reversed(list(items)):
            acc = self.cons(item, acc)
        return acc

    def elements(self, tree: TNode) -> list[TNode]:
        """Flatten a cons-list tree back into a Python list."""
        out: list[TNode] = []
        while tree.tag == self.cons.tag:
            out.append(tree.kids[0])
            tree = tree.kids[1]
        if tree.tag != self.nil.tag:
            raise SignatureError(f"malformed cons-list: unexpected tag {tree.tag}")
        return out


@dataclass(frozen=True)
class OptionSorts:
    """The option encoding of ``T?`` for element sort ``T``."""

    sort: Type
    some: Constructor
    none: Constructor

    def build(self, item: Optional[TNode]) -> TNode:
        return self.none() if item is None else self.some(item)

    def get(self, tree: TNode) -> Optional[TNode]:
        if tree.tag == self.none.tag:
            return None
        if tree.tag == self.some.tag:
            return tree.kids[0]
        raise SignatureError(f"malformed option: unexpected tag {tree.tag}")


class Grammar:
    """Declares sorts and constructors for one family of diffable trees.

    All trees built against the same grammar share a
    :class:`~repro.core.signature.SignatureRegistry` (the Σ of the type
    system) and a URI generator, so diffing any two of them is safe.
    """

    def __init__(self, sigs: Optional[SignatureRegistry] = None) -> None:
        self.sigs = sigs if sigs is not None else SignatureRegistry()
        self.constructors: dict[Tag, Constructor] = {}
        self._lists: dict[str, ListSorts] = {}
        self._cons_lists: dict[str, ConsListSorts] = {}
        self._options: dict[str, OptionSorts] = {}

    @property
    def urigen(self):
        return self.sigs.urigen

    # -- declarations -------------------------------------------------------

    def sort(self, name: str, supers: Iterable[Type] = ()) -> Type:
        """Declare a sort, optionally as a subsort of existing sorts."""
        return self.sigs.declare_sort(mk_sort(name), supers)

    def constructor(
        self,
        tag: Tag,
        result: Type,
        kids: KidSpec = (),
        lits: LitSpec = (),
    ) -> Constructor:
        """Declare a constructor and return its build function."""
        sig = Signature(tag, tuple(kids), tuple(lits), result)
        self.sigs.declare(sig)
        ctor = Constructor(self, sig)
        self.constructors[tag] = ctor
        return ctor

    def list_of(self, elem: Type) -> ListSorts:
        """Declare (or fetch) the flat list sort for element sort ``elem``."""
        key = elem.name
        cached = self._lists.get(key)
        if cached is not None:
            return cached
        list_sort = self.sort(f"List[{key}]")
        tag = f"List[{key}]"
        self.sigs.declare(Signature(tag, (), (), list_sort, variadic=elem))
        sorts = ListSorts(self, list_sort, tag)
        self._lists[key] = sorts
        return sorts

    def cons_list_of(self, elem: Type) -> ConsListSorts:
        """Declare (or fetch) the cons-list sorts for element sort ``elem``
        (the encoding the ablation benchmarks compare against)."""
        key = elem.name
        cached = self._cons_lists.get(key)
        if cached is not None:
            return cached
        list_sort = self.sort(f"ConsList[{key}]")
        cons = self.constructor(
            f"Cons[{key}]", list_sort, kids=[("head", elem), ("tail", list_sort)]
        )
        nil = self.constructor(f"Nil[{key}]", list_sort)
        sorts = ConsListSorts(list_sort, cons, nil)
        self._cons_lists[key] = sorts
        return sorts

    def option_of(self, elem: Type) -> OptionSorts:
        """Declare (or fetch) the option sorts for element sort ``elem``."""
        key = elem.name
        cached = self._options.get(key)
        if cached is not None:
            return cached
        opt_sort = self.sort(f"Option[{key}]")
        some = self.constructor(f"Some[{key}]", opt_sort, kids=[("value", elem)])
        none = self.constructor(f"None[{key}]", opt_sort)
        sorts = OptionSorts(opt_sort, some, none)
        self._options[key] = sorts
        return sorts

    # -- building -------------------------------------------------------------

    def build(self, tag: Tag, kids: Sequence[TNode] = (), lits: Sequence[Any] = ()) -> TNode:
        """Build a node by tag with positional kid and literal lists."""
        return TNode.build(self.sigs, tag, kids, lits, self.urigen)

    def parse_tuple(self, data: Union[tuple, str]) -> TNode:
        """Build a tree from the nested-tuple format ``(tag, kids, lits)``
        produced by :meth:`TNode.to_tuple` (URIs are re-generated)."""
        if isinstance(data, str):
            return self.build(data)
        tag, kids, lits = data
        if isinstance(tag, tuple):
            tag = tag[0]
        sig = self.sigs[tag]
        kid_map = {l: self.parse_tuple(k) for l, k in kids}
        lit_map = dict(lits)
        return self.build(
            tag,
            [kid_map[l] for l in sig.kid_links_for(len(kid_map))],
            [lit_map[l] for l in sig.lit_links],
        )

    # -- decorator front-end ----------------------------------------------------

    def diffable(self, sort: Union[str, Type], tag: Optional[str] = None):
        """Class-decorator mirror of the Scala ``@diffable`` macro.

        Annotations that are Python primitive types (or their names)
        declare literals; string annotations naming a declared sort (or
        Type annotations) declare kids.  The decorated class is replaced
        by the constructor callable.
        """
        result_sort = self.sort(sort) if isinstance(sort, str) else sort

        def wrap(cls: type) -> Constructor:
            ctor_tag = tag if tag is not None else cls.__name__
            kids: list[tuple[Link, Type]] = []
            lits: list[tuple[Link, LitType]] = []
            for name, ann in getattr(cls, "__annotations__", {}).items():
                resolved = self._resolve_annotation(ann)
                if isinstance(resolved, LitType):
                    lits.append((name, resolved))
                else:
                    kids.append((name, resolved))
            return self.constructor(ctor_tag, result_sort, kids=kids, lits=lits)

        return wrap

    def _resolve_annotation(self, ann: Any) -> Union[Type, LitType]:
        if isinstance(ann, (Type, LitType)):
            return ann
        if isinstance(ann, type) and ann in _PY_LIT_TYPES:
            return _PY_LIT_TYPES[ann]
        if isinstance(ann, str):
            # under `from __future__ import annotations`, a quoted
            # annotation like `e1: "Exp"` arrives as the source text
            # `'"Exp"'` — strip the inner quotes
            ann = ann.strip().strip("\"'")
            by_name = {"int": LIT_INT, "str": LIT_STR, "float": LIT_FLOAT, "bool": LIT_BOOL}
            if ann in by_name:
                return by_name[ann]
            return self.sort(ann)
        raise SignatureError(f"cannot interpret annotation {ann!r}")


def diffable(grammar: Grammar, sort: Union[str, Type], tag: Optional[str] = None):
    """Module-level alias of :meth:`Grammar.diffable`."""
    return grammar.diffable(sort, tag)
