"""The linear type system of truechange (Section 3.3, Figure 3).

The typing judgment is ``Σ ⊢ e : (R • S) ▷ (R' • S')`` where

* ``R`` maps the URIs of *unattached subtree roots* to their sort, and
* ``S`` maps *empty slots* ``(parent_uri, link)`` to the sort the slot
  expects.

Roots and slots are linear resources: a detach produces one of each, an
attach consumes one of each, loads consume kid roots and produce the new
node's root, unloads do the reverse.  A well-typed edit script (Definition
3.1) starts and ends with exactly the pre-defined root ``null : Root`` and
no empty slots — no subtree is leaked and no hole is left behind.

The checker is purely functional over immutable snapshots of ``(R, S)``
wrapped in :class:`LinearState`; internally it threads mutable dicts for
speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from .edits import (
    Attach,
    Detach,
    Edit,
    EditScript,
    Insert,
    Load,
    PrimitiveEdit,
    Remove,
    Unload,
    Update,
)
from .node import Link, ROOT_LINK, Node
from .signature import SignatureRegistry
from .types import ANY, ROOT_SORT, Type
from .uris import ROOT_URI, URI

Slot = tuple[URI, Link]


#: Stable diagnostic codes for linear-typing violations.  The ``TL0xx``
#: namespace is shared with the truelint static analyzer
#: (:mod:`repro.analysis`): the type checker emits TL000–TL009, the
#: semantic lint rules TL010+.  Codes are part of the public contract —
#: tools match on them, so they must never be renumbered.
TC_UNKNOWN_SIGNATURE = "TL000"
TC_LEAKED_ROOT = "TL001"
TC_DANGLING_SLOT = "TL002"
TC_DUPLICATE_ROOT = "TL003"
TC_SLOT_ALREADY_EMPTY = "TL004"
TC_MISSING_ROOT = "TL005"
TC_SLOT_NOT_EMPTY = "TL006"
TC_SORT_MISMATCH = "TL007"
TC_ARITY_MISMATCH = "TL008"
TC_BAD_LITERAL = "TL009"
TC_ILL_TYPED = "TL099"  # uncategorized / unknown edit kind


class EditTypeError(Exception):
    """A truechange edit script violates the linear type system.

    Structured like :class:`~repro.core.mtree.PatchError`: ``code`` is a
    stable ``TL0xx`` diagnostic code, ``edit_index`` the primitive index
    of the failing edit within the script (assigned by
    :func:`check_script`; ``None`` when the edit was checked in
    isolation), ``edit`` the failing edit and ``reason`` the bare
    message.  The rendered message names all of them once known.
    """

    def __init__(
        self,
        edit: Any,
        message: str,
        *,
        code: str = TC_ILL_TYPED,
        edit_index: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.edit = edit
        self.reason = message
        self.code = code
        self.edit_index = edit_index

    def __str__(self) -> str:
        where = f" #{self.edit_index}" if self.edit_index is not None else ""
        if self.edit is not None:
            return f"[{self.code}] ill-typed edit{where} ({self.edit}): {self.reason}"
        if where:
            return f"[{self.code}] ill-typed edit{where}: {self.reason}"
        return f"[{self.code}] {self.reason}"


@dataclass(frozen=True)
class LinearState:
    """An immutable snapshot of the typing state ``(R • S)``."""

    roots: tuple[tuple[URI, Type], ...]
    slots: tuple[tuple[Slot, Type], ...]

    @staticmethod
    def of(roots: dict[URI, Type], slots: dict[Slot, Type]) -> "LinearState":
        return LinearState(
            tuple(sorted(roots.items(), key=lambda kv: repr(kv[0]))),
            tuple(sorted(slots.items(), key=lambda kv: repr(kv[0]))),
        )

    def as_dicts(self) -> tuple[dict[URI, Type], dict[Slot, Type]]:
        return dict(self.roots), dict(self.slots)

    def __str__(self) -> str:
        rs = ", ".join(f"{u}:{t}" for u, t in self.roots)
        ss = ", ".join(f"{p}.{l}:{t}" for (p, l), t in self.slots)
        return f"({{{rs}}} • {{{ss}}})"


#: The state ``((null : Root) • ε)`` of Definition 3.1.
CLOSED_STATE = LinearState.of({ROOT_URI: ROOT_SORT}, {})

#: The initial state of Definition 3.2: the root with its slot still empty.
INITIAL_STATE = LinearState.of({ROOT_URI: ROOT_SORT}, {(ROOT_URI, ROOT_LINK): ANY})


def check_edit(
    sigs: SignatureRegistry,
    edit: Edit,
    roots: dict[URI, Type],
    slots: dict[Slot, Type],
) -> None:
    """Apply one typing rule of Figure 3, mutating ``roots``/``slots``.

    The composite edits are covered by derived rules: ``T-Insert`` is
    ``T-Load`` followed by ``T-Attach`` of the same node, ``T-Remove`` is
    ``T-Detach`` followed by ``T-Unload`` — exactly the sequences
    :meth:`~repro.core.edits.EditScript.primitives` expands them into, so
    scripts carrying composites obey Definition 3.1 under the same
    judgment.  Raises :class:`EditTypeError` if no rule applies.
    """
    if isinstance(edit, Detach):
        _check_detach(sigs, edit, roots, slots)
    elif isinstance(edit, Attach):
        _check_attach(sigs, edit, roots, slots)
    elif isinstance(edit, Load):
        _check_load(sigs, edit, roots, slots)
    elif isinstance(edit, Unload):
        _check_unload(sigs, edit, roots, slots)
    elif isinstance(edit, Update):
        _check_update(sigs, edit)
    elif isinstance(edit, (Insert, Remove)):
        # T-Insert / T-Remove: the conjunction of the two primitive rules,
        # checked against scratch copies so a failing second half cannot
        # leave (R, S) half-mutated.  A failure in either half is
        # re-attributed to the composite so the diagnostic names the edit
        # the script actually contains.
        tmp_roots, tmp_slots = dict(roots), dict(slots)
        try:
            for prim in edit.expand():
                check_edit(sigs, prim, tmp_roots, tmp_slots)
        except EditTypeError as exc:
            raise EditTypeError(edit, exc.reason, code=exc.code) from None
        roots.clear()
        roots.update(tmp_roots)
        slots.clear()
        slots.update(tmp_slots)
    else:  # pragma: no cover - defensive
        raise EditTypeError(edit, f"unknown edit kind {type(edit).__name__}")


#: Human-readable summary of each TL0xx typing code, keyed by code.  The
#: truelint analyzer extends this table with its TL01x lint rules; see
#: ``docs/truechange-spec.md`` §8 for the full contract.
TC_CODES: dict[str, str] = {
    TC_UNKNOWN_SIGNATURE: "unknown-signature: an edit names a tag or link Σ does not declare",
    TC_LEAKED_ROOT: "leaked-root: the final state's detached roots differ from the expected ones",
    TC_DANGLING_SLOT: "dangling-slot: the final state's empty slots differ from the expected ones",
    TC_DUPLICATE_ROOT: "duplicate-root: an edit (re)introduces a root URI that is already a root",
    TC_SLOT_ALREADY_EMPTY: "slot-already-empty: a detach targets a slot that is already empty",
    TC_MISSING_ROOT: "missing-root: an edit consumes a detached root that does not exist",
    TC_SLOT_NOT_EMPTY: "slot-not-empty: an attach targets a slot that is not empty",
    TC_SORT_MISMATCH: "sort-mismatch: a root's sort is not a subtype of the consuming slot's sort",
    TC_ARITY_MISMATCH: "arity-mismatch: kid bindings do not match the signature's kid links",
    TC_BAD_LITERAL: "bad-literal: literal bindings violate the signature's base types",
    TC_ILL_TYPED: "ill-typed: uncategorized linear-typing violation",
}


def _check_detach(
    sigs: SignatureRegistry,
    e: Detach,
    roots: dict[URI, Type],
    slots: dict[Slot, Type],
) -> None:
    # T-Detach: node ∉ dom(R), par.x ∉ dom(S)
    if e.node.uri in roots:
        raise EditTypeError(
            e,
            f"node {e.node} is already a detached root",
            code=TC_DUPLICATE_ROOT,
        )
    slot = (e.parent.uri, e.link)
    if slot in slots:
        raise EditTypeError(
            e,
            f"slot {e.parent}.{e.link} is already empty",
            code=TC_SLOT_ALREADY_EMPTY,
        )
    node_sig = sigs[e.node.tag]
    parent_sig = sigs[e.parent.tag]
    slot_type = parent_sig.kid_type(e.link)  # raises if link unknown
    roots[e.node.uri] = node_sig.result
    slots[slot] = slot_type


def _check_attach(
    sigs: SignatureRegistry,
    e: Attach,
    roots: dict[URI, Type],
    slots: dict[Slot, Type],
) -> None:
    # T-Attach: node : T ∈ R, par.x : T' ∈ S, T <: T'
    if e.node.uri not in roots:
        raise EditTypeError(
            e, f"node {e.node} is not a detached root", code=TC_MISSING_ROOT
        )
    slot = (e.parent.uri, e.link)
    if slot not in slots:
        raise EditTypeError(
            e, f"slot {e.parent}.{e.link} is not empty", code=TC_SLOT_NOT_EMPTY
        )
    t = roots[e.node.uri]
    t_slot = slots[slot]
    if not sigs.is_subtype(t, t_slot):
        raise EditTypeError(
            e,
            f"root type {t} is not a subtype of slot type {t_slot}",
            code=TC_SORT_MISMATCH,
        )
    del roots[e.node.uri]
    del slots[slot]


def _check_load(
    sigs: SignatureRegistry,
    e: Load,
    roots: dict[URI, Type],
    slots: dict[Slot, Type],
) -> None:
    # T-Load: kids are roots of matching types; lits well-typed; node fresh
    sig = sigs[e.node.tag]
    if e.node.uri in roots:
        raise EditTypeError(
            e,
            f"loaded node URI {e.node.uri} is already a root",
            code=TC_DUPLICATE_ROOT,
        )
    kid_links = [l for l, _ in e.kids]
    if kid_links != list(sig.kid_links_for(len(e.kids))):
        raise EditTypeError(
            e,
            f"kid links {kid_links} do not match signature links "
            f"{list(sig.kid_links_for(len(e.kids)))}",
            code=TC_ARITY_MISMATCH,
        )
    # Validate without mutating, so a failed check leaves (R, S) intact.
    # Each kid consumes one root linearly, so duplicates are rejected too.
    seen: set[URI] = set()
    for link, kid_uri in e.kids:
        if kid_uri not in roots or kid_uri in seen:
            raise EditTypeError(
                e,
                f"kid {link}->{kid_uri} is not a detached root",
                code=TC_MISSING_ROOT,
            )
        t_kid = roots[kid_uri]
        t_expected = sig.kid_type(link)
        if not sigs.is_subtype(t_kid, t_expected):
            raise EditTypeError(
                e,
                f"kid {link}->{kid_uri} has type {t_kid}, expected <: {t_expected}",
                code=TC_SORT_MISMATCH,
            )
        seen.add(kid_uri)
    try:
        sigs.check_lits(e.node.tag, dict(e.lits))
    except Exception as exc:
        raise EditTypeError(e, str(exc), code=TC_BAD_LITERAL) from None
    for _, kid_uri in e.kids:
        del roots[kid_uri]
    roots[e.node.uri] = sig.result


def _check_unload(
    sigs: SignatureRegistry,
    e: Unload,
    roots: dict[URI, Type],
    slots: dict[Slot, Type],
) -> None:
    # T-Unload: node : T ∈ R; kids ∉ dom(R); kids become roots
    sig = sigs[e.node.tag]
    if e.node.uri not in roots:
        raise EditTypeError(
            e, f"node {e.node} is not a detached root", code=TC_MISSING_ROOT
        )
    kid_links = [l for l, _ in e.kids]
    if kid_links != list(sig.kid_links_for(len(e.kids))):
        raise EditTypeError(
            e,
            f"kid links {kid_links} do not match signature links "
            f"{list(sig.kid_links_for(len(e.kids)))}",
            code=TC_ARITY_MISMATCH,
        )
    kid_uris = [u for _, u in e.kids]
    if len(set(kid_uris)) != len(kid_uris):
        raise EditTypeError(
            e, f"duplicate kid URIs {kid_uris}", code=TC_ARITY_MISMATCH
        )
    for link, kid_uri in e.kids:
        if kid_uri in roots:
            raise EditTypeError(
                e,
                f"kid {link}->{kid_uri} is already a detached root",
                code=TC_DUPLICATE_ROOT,
            )
    del roots[e.node.uri]
    for link, kid_uri in e.kids:
        roots[kid_uri] = sig.kid_type(link)


def _check_update(sigs: SignatureRegistry, e: Update) -> None:
    # T-Update: both literal lists match the signature; new values typed
    sig = sigs[e.node.tag]
    old_links = [l for l, _ in e.old_lits]
    new_links = [l for l, _ in e.new_lits]
    if old_links != list(sig.lit_links) or new_links != list(sig.lit_links):
        raise EditTypeError(
            e,
            f"literal links do not match signature links {list(sig.lit_links)}",
            code=TC_BAD_LITERAL,
        )
    try:
        sigs.check_lits(e.node.tag, dict(e.new_lits))
    except Exception as exc:
        raise EditTypeError(e, str(exc), code=TC_BAD_LITERAL) from None


def check_script(
    sigs: SignatureRegistry,
    script: EditScript,
    before: LinearState,
) -> LinearState:
    """T-EditScript: thread the typing state through all edits.

    Returns the final ``(R' • S')``; raises :class:`EditTypeError` on the
    first ill-typed edit, with ``edit_index`` set to the edit's *primitive*
    index in the script — the same span :class:`~repro.core.mtree.PatchError`
    carries, so a statically rejected script and a runtime-rejected one
    point at the same edit.
    """
    roots, slots = before.as_dicts()
    i = -1
    try:
        for i, edit in enumerate(script.primitives()):
            check_edit(sigs, edit, roots, slots)
    except EditTypeError as exc:
        if exc.edit_index is None:
            exc.edit_index = i
        raise
    return LinearState.of(roots, slots)


def is_well_typed(sigs: SignatureRegistry, script: EditScript) -> bool:
    """Definition 3.1: ``Σ ⊢ ∆ : ((null:Root) • ε) ▷ ((null:Root) • ε)``."""
    try:
        return check_script(sigs, script, CLOSED_STATE) == CLOSED_STATE
    except EditTypeError:
        return False


def assert_well_typed(sigs: SignatureRegistry, script: EditScript) -> None:
    """Like :func:`is_well_typed` but raises with a diagnostic on failure."""
    after = check_script(sigs, script, CLOSED_STATE)
    if after != CLOSED_STATE:
        code = (
            TC_LEAKED_ROOT
            if dict(after.roots) != dict(CLOSED_STATE.roots)
            else TC_DANGLING_SLOT
        )
        raise EditTypeError(
            None,
            f"edit script leaks resources: final state {after} != {CLOSED_STATE}",
            code=code,
        )


def is_well_typed_initializing(sigs: SignatureRegistry, script: EditScript) -> bool:
    """Definition 3.2: a well-typed script that fills the root slot of the
    empty tree."""
    try:
        return check_script(sigs, script, INITIAL_STATE) == CLOSED_STATE
    except EditTypeError:
        return False


def check_edits(
    sigs: SignatureRegistry,
    edits: Iterable[PrimitiveEdit],
    before: LinearState = CLOSED_STATE,
) -> LinearState:
    """Convenience wrapper accepting a plain iterable of edits."""
    return check_script(sigs, EditScript(edits), before)
