"""Three-way merging of truechange edit scripts.

The paper's introduction lists version control among the applications of
structural patches, and Section 7 discusses patch theories.  Because
truechange scripts address nodes by URI and are linearly typed, a simple
and *sound* merge is possible: two scripts that **commute** can be
concatenated; scripts that race on a linear resource are a conflict.

Whether two scripts commute is decided by the static commutation
analysis (:mod:`repro.analysis.commute`): each script is summarized by a
footprint of the ancestor-tree resources it consumes — slots it rewires,
nodes it moves, literals it updates, nodes it destroys — and the scripts
commute iff the footprints are disjoint.  This is strictly more
permissive than the historical URI-overlap check that used to live here:
moving a node and updating the same node's literals commute, as do two
moves whose slots and nodes differ, even under a shared parent.  What
remains conflicting is precisely what must: same slot rewired, same node
moved twice, same literals updated twice, or a destroyed node used by the
other side.

Given a common ancestor tree and two scripts ∆₁, ∆₂ derived from it,
:func:`merge_scripts` either returns a merged script (∆₁ followed by ∆₂
with ∆₂'s freshly loaded URIs renamed away from ∆₁'s) or reports the
conflicting resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .edits import EditScript, Load, map_edit_uris
from .uris import URI, URIGen


@dataclass(frozen=True)
class MergeConflict:
    """A linear resource the two scripts race on.

    ``kind`` classifies the race: ``'slot'`` (both rewire the same
    ``(parent, link)`` slot), ``'position'`` (both move the same node),
    ``'content'`` (both update the same node's literals), or ``'node'``
    (one destroys a node the other uses).
    """

    kind: str  # 'slot' | 'position' | 'content' | 'node'
    resource: tuple

    def __str__(self) -> str:
        if self.kind == "slot":
            parent, link = self.resource
            return f"both scripts rewire slot {parent}.{link}"
        if self.kind == "position":
            return f"both scripts move node {self.resource[0]}"
        if self.kind == "content":
            return f"both scripts update the literals of node {self.resource[0]}"
        return f"one script deletes node {self.resource[0]} that the other uses"


@dataclass
class MergeResult:
    script: Optional[EditScript]
    conflicts: list[MergeConflict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.script is not None


def find_conflicts(a: EditScript, b: EditScript) -> list[MergeConflict]:
    """The precise reasons the scripts fail to commute (empty iff they
    merge cleanly).  Delegates to the commutation analysis; imported
    lazily because :mod:`repro.analysis` builds on this module's types."""
    from repro.analysis.commute import commute_conflicts

    return commute_conflicts(a, b)


def _loaded_uris(script: EditScript) -> set[URI]:
    return {e.node.uri for e in script.primitives() if isinstance(e, Load)}


def _rename_loads(script: EditScript, urigen: URIGen, taken: set[URI]) -> EditScript:
    """Rename the freshly loaded URIs of a script so they cannot collide
    with another script's loads (both sides drew from generators that may
    have restarted at the same point)."""
    mapping: dict[URI, URI] = {}
    for edit in script.primitives():
        if isinstance(edit, Load) and edit.node.uri in taken:
            fresh = urigen.fresh()
            while fresh in taken:
                fresh = urigen.fresh()
            mapping[edit.node.uri] = fresh

    if not mapping:
        return script
    return EditScript(
        map_edit_uris(edit, lambda u: mapping.get(u, u)) for edit in script
    )


def merge_scripts(
    a: EditScript,
    b: EditScript,
    urigen: Optional[URIGen] = None,
) -> MergeResult:
    """Merge two scripts derived from the same ancestor tree.

    On success the merged script is ``a`` followed by ``b`` (with ``b``'s
    loads renamed); applying it to the ancestor produces a tree with both
    changes.  The scripts themselves are concatenated as given — the
    commutation precheck canonicalizes internally for analysis, but never
    rewrites the user's scripts.  On conflict, no script is produced.
    """
    conflicts = find_conflicts(a, b)
    if conflicts:
        return MergeResult(None, conflicts)
    a_loaded, b_loaded = _loaded_uris(a), _loaded_uris(b)
    if urigen is None:
        top = max(
            (u for u in a_loaded | b_loaded if isinstance(u, int)), default=0
        )
        urigen = URIGen(start=top + 1)
    b_renamed = _rename_loads(b, urigen, set(a_loaded))
    return MergeResult(a + b_renamed, [])
