"""Three-way merging of truechange edit scripts.

The paper's introduction lists version control among the applications of
structural patches, and Section 7 discusses patch theories.  Because
truechange scripts address nodes by URI and are linearly typed, a simple
and *sound* merge is possible: two scripts that consume disjoint
resources commute, so they can be concatenated; overlapping resource use
is a conflict.

Given a common ancestor tree and two scripts ∆₁, ∆₂ derived from it,
:func:`merge_scripts` either returns a merged script (∆₁ followed by ∆₂
with ∆₂'s freshly loaded URIs renamed away from ∆₁'s) or reports the
conflicting resources.  The resources of a script are:

* *slots* it detaches or fills: ``(parent_uri, link)`` of Detach/Attach;
* *nodes* it consumes: updated, unloaded, or re-attached existing nodes;
* node *tags* are irrelevant — URIs identify resources.

This is deliberately conservative (edits to the same node always
conflict, even when they would compose), which is the right default for
a version-control merge: no silent misapplication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .edits import (
    Attach,
    Detach,
    EditScript,
    Load,
    Unload,
    Update,
    map_edit_uris,
)
from .node import Link
from .uris import URI, URIGen


@dataclass(frozen=True)
class MergeConflict:
    """A resource touched by both scripts."""

    kind: str  # 'slot' | 'node'
    resource: tuple

    def __str__(self) -> str:
        if self.kind == "slot":
            parent, link = self.resource
            return f"both scripts edit slot {parent}.{link}"
        return f"both scripts edit node {self.resource[0]}"


@dataclass
class MergeResult:
    script: Optional[EditScript]
    conflicts: list[MergeConflict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.script is not None


@dataclass
class _Resources:
    slots: set[tuple[URI, Link]] = field(default_factory=set)
    nodes: set[URI] = field(default_factory=set)
    loaded: set[URI] = field(default_factory=set)


def script_resources(script: EditScript) -> _Resources:
    """The ancestor-tree resources a script touches."""
    res = _Resources()
    for edit in script.primitives():
        if isinstance(edit, Detach):
            res.slots.add((edit.parent.uri, edit.link))
            if edit.node.uri not in res.loaded:
                res.nodes.add(edit.node.uri)
        elif isinstance(edit, Attach):
            if edit.parent.uri not in res.loaded:
                res.slots.add((edit.parent.uri, edit.link))
            if edit.node.uri not in res.loaded:
                res.nodes.add(edit.node.uri)
        elif isinstance(edit, Load):
            res.loaded.add(edit.node.uri)
            for _, kid in edit.kids:
                if kid not in res.loaded:
                    res.nodes.add(kid)
        elif isinstance(edit, Unload):
            if edit.node.uri not in res.loaded:
                res.nodes.add(edit.node.uri)
        elif isinstance(edit, Update):
            res.nodes.add(edit.node.uri)
    return res


def find_conflicts(a: EditScript, b: EditScript) -> list[MergeConflict]:
    """Resources touched by both scripts."""
    ra, rb = script_resources(a), script_resources(b)
    conflicts: list[MergeConflict] = []
    for slot in sorted(ra.slots & rb.slots, key=repr):
        conflicts.append(MergeConflict("slot", slot))
    for node in sorted(ra.nodes & rb.nodes, key=repr):
        conflicts.append(MergeConflict("node", (node,)))
    return conflicts


def _rename_loads(script: EditScript, urigen: URIGen, taken: set[URI]) -> EditScript:
    """Rename the freshly loaded URIs of a script so they cannot collide
    with another script's loads (both sides drew from generators that may
    have restarted at the same point)."""
    mapping: dict[URI, URI] = {}
    for edit in script.primitives():
        if isinstance(edit, Load) and edit.node.uri in taken:
            fresh = urigen.fresh()
            while fresh in taken:
                fresh = urigen.fresh()
            mapping[edit.node.uri] = fresh

    if not mapping:
        return script
    return EditScript(
        map_edit_uris(edit, lambda u: mapping.get(u, u)) for edit in script
    )


def merge_scripts(
    a: EditScript,
    b: EditScript,
    urigen: Optional[URIGen] = None,
) -> MergeResult:
    """Merge two scripts derived from the same ancestor tree.

    On success the merged script is ``a`` followed by ``b`` (with ``b``'s
    loads renamed); applying it to the ancestor produces a tree with both
    changes.  On conflict, no script is produced.
    """
    conflicts = find_conflicts(a, b)
    if conflicts:
        return MergeResult(None, conflicts)
    ra, rb = script_resources(a), script_resources(b)
    if urigen is None:
        top = max(
            (u for u in ra.loaded | rb.loaded if isinstance(u, int)), default=0
        )
        urigen = URIGen(start=top + 1)
    b_renamed = _rename_loads(b, urigen, set(ra.loaded))
    return MergeResult(a + b_renamed, [])
