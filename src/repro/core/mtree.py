"""The standard semantics of truechange (Section 3.2, Figure 2).

An :class:`MTree` is a mutable tree made of :class:`MNode` nodes together
with an index of all loaded nodes, so that every edit operation is
processed in constant time.  The pre-defined root node has URI ``None``
and a single slot :data:`~repro.core.node.ROOT_LINK`.

The module also provides executable versions of the paper's metatheory
ingredients:

* :func:`mnode_well_typed` — MNode typing relative to empty slots
  (Definition 3.3),
* :func:`mtree_well_typed` — MTree typing relative to slots and roots
  (Definition 3.4),
* :func:`check_syntactic_compliance` — Definition 3.5,

which the test suite uses to check Theorem 3.6 / Lemmas 3.7–3.8 on
concrete and randomly generated scripts.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.observability import OBS, metrics as _metrics, span as _span

from .edits import Attach, Detach, Edit, EditScript, Load, PrimitiveEdit, Unload, Update
from .node import Link, Node, ROOT_LINK, ROOT_NODE, ROOT_TAG
from .signature import SignatureRegistry
from .tree import literal_eq
from .typecheck import Slot
from .types import Type
from .uris import ROOT_URI, URI


class PatchError(Exception):
    """Patching failed (only possible for ill-typed or non-compliant scripts).

    Structured: carries the failing edit (``edit``), its primitive index in
    the script (``edit_index``, assigned by :meth:`MTree.patch`), and
    whether a transactional application undid all prior edits before
    raising (``rolled_back``).  The rendered message always names the edit
    index and operation once they are known.
    """

    def __init__(
        self,
        message: str,
        *,
        edit: Optional[Edit] = None,
        edit_index: Optional[int] = None,
        rolled_back: bool = False,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.edit = edit
        self.edit_index = edit_index
        self.rolled_back = rolled_back

    def __str__(self) -> str:
        parts = []
        if self.edit_index is not None:
            op = type(self.edit).__name__.lower() if self.edit is not None else "edit"
            parts.append(f"edit #{self.edit_index} ({op}): ")
        parts.append(self.message)
        if self.rolled_back:
            parts.append(" [rolled back]")
        return "".join(parts)


class UnknownUriError(PatchError):
    """An edit refers to a URI that is not in the tree's index."""


class UnknownLinkError(PatchError):
    """An edit refers to a link the target node does not have."""


class SlotOccupiedError(PatchError):
    """An attach targets a slot that already holds a subtree."""


class DetachMismatchError(PatchError):
    """A detach names a node that is not attached at the given slot."""


class UriConflictError(PatchError):
    """A load reuses a URI that is already in the tree's index."""


class ArityMismatchError(PatchError):
    """An unload's kid list does not match the node's actual kids."""


class MNode:
    """A mutable tree node: URI + tag, kid links, literal links.

    Empty slots are represented as ``None`` entries in :attr:`kids` —
    exactly the representation the truechange type system legitimizes:
    a link points to *at most one* subtree at any time.
    """

    __slots__ = ("node", "kids", "lits")

    def __init__(
        self,
        node: Node,
        kids: Optional[dict[Link, Optional["MNode"]]] = None,
        lits: Optional[dict[Link, Any]] = None,
    ) -> None:
        self.node = node
        self.kids: dict[Link, Optional[MNode]] = kids if kids is not None else {}
        self.lits: dict[Link, Any] = lits if lits is not None else {}

    @property
    def tag(self) -> str:
        return self.node.tag

    @property
    def uri(self) -> URI:
        return self.node.uri

    def iter_subtree(self) -> Iterator["MNode"]:
        """Pre-order traversal of this node and all present descendants."""
        stack = [self]
        while stack:
            n = stack.pop()
            yield n
            stack.extend(k for k in n.kids.values() if k is not None)

    def to_tuple(self, with_uris: bool = False) -> tuple:
        """A hashable snapshot for equality checks.

        With ``with_uris=False`` this implements the paper's ``≃``: equality
        of shape, tags, and literals, ignoring URIs (URIs of the target tree
        are irrelevant, Section 1).
        """
        kids = tuple(
            (l, k.to_tuple(with_uris) if k is not None else None)
            for l, k in sorted(self.kids.items())
        )
        lits = tuple(sorted(self.lits.items(), key=lambda kv: kv[0]))
        head = (self.tag, self.uri) if with_uris else self.tag
        return (head, kids, lits)

    def pretty(self) -> str:
        parts = [f"{v!r}" for _, v in sorted(self.lits.items())]
        parts += [
            (k.pretty() if k is not None else "□")
            for _, k in sorted(self.kids.items())
        ]
        inner = ", ".join(parts)
        return f"{self.tag}_{self.uri}({inner})" if parts else f"{self.tag}_{self.uri}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MNode({self.pretty()})"


class MTree:
    """A mutable tree with an index of all loaded nodes (Figure 2)."""

    __slots__ = ("root", "index", "arena")

    def __init__(self) -> None:
        self.root = MNode(ROOT_NODE, kids={ROOT_LINK: None}, lits={})
        self.index: dict[URI, MNode] = {ROOT_URI: self.root}
        # optional flat mirror, kept in sync by process_edit
        self.arena = None

    def attach_arena(self, sigs: SignatureRegistry):
        """Build (or return) a :class:`~repro.core.arena.TreeArena` mirror
        of this tree.  Once attached, every edit applied through
        :meth:`process_edit` keeps the arena incrementally consistent —
        fingerprints over the touched region are recomputed lazily by the
        arena's ``reflow``.  Code that mutates the tree behind the edit
        interface must call ``arena.invalidate()`` (the transactional
        rollback path does)."""
        if self.arena is None:
            from .arena import TreeArena

            self.arena = TreeArena.from_mtree(self, sigs)
        return self.arena

    # -- standard semantics ------------------------------------------------

    def patch(
        self,
        script: EditScript,
        *,
        atomic: bool = False,
        sigs: Optional[SignatureRegistry] = None,
        verify: bool = False,
        preflight: str = "scan",
        fault_hook: Optional[Callable[[int, PrimitiveEdit], None]] = None,
    ) -> "MTree":
        """``⟦∆⟧``: apply every edit of ``script`` to this tree in place.

        With ``atomic=True`` the application is transactional: the script
        is pre-flight typechecked (when ``sigs`` is given) and an undo
        journal rolls the tree back to a bit-identical state if any edit
        raises — see :func:`repro.robustness.patch_atomic`.  ``preflight``
        picks the typecheck for the atomic path: ``"scan"`` reads the
        tree's actual root/slot state; ``"static"`` checks Definition 3.1
        from the closed state without consulting the tree — equivalent
        whenever the tree is closed, and O(script) instead of O(tree).
        ``verify=True`` runs the tree-integrity verifier after patching
        (and, when combined with ``atomic``, rolls back if verification
        fails).  ``fault_hook`` is called as
        ``hook(primitive_index, edit)`` before each edit; it exists for
        fault-injection tests and is applied on both paths.

        On failure the raised :class:`PatchError` names the primitive edit
        index and operation.
        """
        if atomic:
            from repro.robustness import patch_atomic

            return patch_atomic(
                self,
                script,
                sigs=sigs,
                verify=verify,
                preflight=preflight,
                fault_hook=fault_hook,
            )
        process = self.process_edit
        i, edit = -1, None
        try:
            if fault_hook is not None:
                for i, edit in enumerate(script.primitives()):
                    fault_hook(i, edit)
                    process(edit)
            elif not OBS.enabled:
                for i, edit in enumerate(script.primitives()):
                    process(edit)
            else:
                # instrumented path: per-kind edit counters + an apply span
                counts: dict[str, int] = {}
                with _span("repro.patch.apply"):
                    for i, edit in enumerate(script.primitives()):
                        process(edit)
                        kind = type(edit).__name__.lower()
                        counts[kind] = counts.get(kind, 0) + 1
                m = _metrics()
                m.counter("repro.patch.scripts").inc()
                for kind, n in counts.items():
                    m.counter(f"repro.patch.edits.{kind}").inc(n)
        except PatchError as exc:
            if exc.edit_index is None:
                exc.edit_index = i
                if exc.edit is None:
                    exc.edit = edit
            raise
        if verify:
            from repro.robustness import verify_tree

            verify_tree(self, sigs)
        return self

    def process_edit(self, edit: PrimitiveEdit) -> None:
        """Apply a single edit, updating nodes and the index (Figure 2).

        Each edit is validated against the actual tree state before any
        mutation, so a failing edit leaves the tree untouched: a detach
        must name the subtree actually held by the slot, an attach must
        target an existing empty slot, a load must use a fresh URI, an
        unload must list the node's actual kids, and an update may only
        touch literal links the node has.  Well-typed, syntactically
        compliant scripts (Definitions 3.1/3.5) never trip these checks.
        """
        if isinstance(edit, Detach):
            parent = self._lookup(edit.parent.uri, edit)
            if edit.link not in parent.kids:
                raise UnknownLinkError(
                    f"parent {edit.parent} has no slot {edit.link!r}", edit=edit
                )
            held = parent.kids[edit.link]
            if held is None:
                raise DetachMismatchError(
                    f"slot {edit.parent}.{edit.link} is empty, cannot detach "
                    f"{edit.node}",
                    edit=edit,
                )
            if held.uri != edit.node.uri:
                raise DetachMismatchError(
                    f"slot {edit.parent}.{edit.link} holds {held.node}, not "
                    f"{edit.node}",
                    edit=edit,
                )
            parent.kids[edit.link] = None
        elif isinstance(edit, Attach):
            parent = self._lookup(edit.parent.uri, edit)
            node = self._lookup(edit.node.uri, edit)
            if edit.link not in parent.kids:
                raise UnknownLinkError(
                    f"parent {edit.parent} has no slot {edit.link!r}", edit=edit
                )
            held = parent.kids[edit.link]
            if held is not None:
                raise SlotOccupiedError(
                    f"slot {edit.parent}.{edit.link} already holds {held.node}",
                    edit=edit,
                )
            parent.kids[edit.link] = node
        elif isinstance(edit, Load):
            if edit.node.uri in self.index:
                raise UriConflictError(
                    f"loaded URI {edit.node.uri} is already in the index",
                    edit=edit,
                )
            kid_nodes: dict[Link, Optional[MNode]] = {
                link: self._lookup(uri, edit) for link, uri in edit.kids
            }
            self.index[edit.node.uri] = MNode(edit.node, kid_nodes, dict(edit.lits))
        elif isinstance(edit, Unload):
            node = self._lookup(edit.node.uri, edit)
            if len(edit.kids) != len(node.kids):
                raise ArityMismatchError(
                    f"unload lists {len(edit.kids)} kid(s) but {edit.node} "
                    f"has {len(node.kids)}",
                    edit=edit,
                )
            for link, kid_uri in edit.kids:
                kid = node.kids.get(link)
                if kid is None or kid.uri != kid_uri:
                    raise ArityMismatchError(
                        f"unload kid {link!r} is not {kid_uri} "
                        f"(actual: {kid.node if kid is not None else 'empty'})",
                        edit=edit,
                    )
            del self.index[edit.node.uri]
        elif isinstance(edit, Update):
            node = self._lookup(edit.node.uri, edit)
            for link, _ in edit.new_lits:
                if link not in node.lits:
                    raise UnknownLinkError(
                        f"node {edit.node} has no literal link {link!r}", edit=edit
                    )
            node.lits.update(dict(edit.new_lits))
        else:  # pragma: no cover - defensive
            raise PatchError(f"unknown edit kind {type(edit).__name__}", edit=edit)
        arena = self.arena
        if arena is not None:
            # mirror the (already validated and applied) edit
            arena.process_edit(edit)

    def _lookup(self, uri: URI, edit: PrimitiveEdit) -> MNode:
        try:
            return self.index[uri]
        except KeyError:
            raise UnknownUriError(
                f"edit refers to unknown URI {uri}", edit=edit
            ) from None

    # -- views ---------------------------------------------------------------

    @property
    def main(self) -> Optional[MNode]:
        """The tree hanging off the pre-defined root slot, if any."""
        return self.root.kids[ROOT_LINK]

    def to_tuple(self, with_uris: bool = False) -> tuple:
        main = self.main
        return ("<empty>",) if main is None else main.to_tuple(with_uris)

    def structure_equals(self, other: "MTree") -> bool:
        """The paper's ``≃`` on whole trees (ignores URIs)."""
        return self.to_tuple(with_uris=False) == other.to_tuple(with_uris=False)

    def node_count(self) -> int:
        """Number of nodes attached under the root (excludes the root)."""
        main = self.main
        return 0 if main is None else sum(1 for _ in main.iter_subtree())

    def pretty(self) -> str:
        main = self.main
        return "<empty>" if main is None else main.pretty()

    def copy(self) -> "MTree":
        """Deep-copy this tree (same URIs, fresh MNodes)."""
        out = MTree()

        def go(n: MNode) -> MNode:
            m = MNode(n.node, {}, dict(n.lits))
            out.index[m.uri] = m
            for link, kid in n.kids.items():
                m.kids[link] = None if kid is None else go(kid)
            return m

        main = self.main
        if main is not None:
            out.root.kids[ROOT_LINK] = go(main)
        # detached roots (anything indexed but not reachable from the root)
        reachable = {n.uri for n in out.root.iter_subtree()}
        for uri, n in self.index.items():
            if uri not in reachable and uri not in out.index:
                out.index[uri] = go(n)
        return out


# -- Definitions 3.3 - 3.5 as executable checks -------------------------------


class TypingViolation(Exception):
    """An MNode/MTree typing invariant (Definitions 3.3/3.4) is violated."""


def mnode_well_typed(
    sigs: SignatureRegistry,
    slots: dict[Slot, Type],
    n: MNode,
) -> Type:
    """Definition 3.3: check ``Σ, S ⊢ n : T`` and return ``T``.

    Raises :class:`TypingViolation` if any condition fails.
    """
    sig = sigs[n.tag]
    if set(n.lits) != set(sig.lit_links):
        raise TypingViolation(f"{n.node}: literal links {sorted(n.lits)} != signature")
    for link in sig.lit_links:
        base = sig.lit_type(link)
        if not base.check(n.lits[link]):
            raise TypingViolation(f"{n.node}.{link}: literal {n.lits[link]!r} not a {base}")
    if sig.is_variadic:
        kid_links = tuple(str(i) for i in range(len(n.kids)))
        if set(n.kids) != set(kid_links):
            raise TypingViolation(
                f"{n.node}: variadic kid links {sorted(n.kids)} are not consecutive"
            )
    else:
        kid_links = sig.kid_links
        if set(n.kids) != set(kid_links):
            raise TypingViolation(f"{n.node}: kid links {sorted(n.kids)} != signature")
    for link in kid_links:
        expected = sig.kid_type(link)
        kid = n.kids[link]
        if kid is None:
            slot = (n.uri, link)
            if slot not in slots:
                raise TypingViolation(f"{n.node}.{link}: null kid but no tracked slot")
            if not sigs.is_subtype(slots[slot], expected):
                raise TypingViolation(
                    f"{n.node}.{link}: slot type {slots[slot]} not <: {expected}"
                )
        else:
            actual = mnode_well_typed(sigs, slots, kid)
            if not sigs.is_subtype(actual, expected):
                raise TypingViolation(
                    f"{n.node}.{link}: kid type {actual} not <: {expected}"
                )
    return sig.result


def mtree_well_typed(
    sigs: SignatureRegistry,
    slots: dict[Slot, Type],
    roots: dict[URI, Type],
    t: MTree,
) -> None:
    """Definition 3.4: check ``Σ, S, R ⊢ t``."""
    for (p, link), _ in slots.items():
        if p not in t.index:
            raise TypingViolation(f"slot parent {p} not in index")
        if link not in t.index[p].kids:
            raise TypingViolation(f"slot parent {p} has no link {link!r}")
    for uri, expected in roots.items():
        if uri not in t.index:
            raise TypingViolation(f"root {uri} not in index")
        actual = mnode_well_typed(sigs, slots, t.index[uri])
        if not sigs.is_subtype(actual, expected):
            raise TypingViolation(f"root {uri} has type {actual}, expected <: {expected}")


class ComplianceError(Exception):
    """An edit script is not syntactically compliant (Definition 3.5)."""


def check_syntactic_compliance(script: EditScript, t: MTree) -> None:
    """Definition 3.5: check ``∆ ≺ t``.

    The check simulates the script against a copy of ``t`` because the
    conditions on Detach/Unload refer to the tree state at the time the
    edit executes.
    """
    sim = t.copy()
    loaded: set[URI] = set()
    for edit in script.primitives():
        if isinstance(edit, Detach):
            p = sim.index.get(edit.parent.uri)
            if p is None:
                raise ComplianceError(f"{edit}: parent URI unknown")
            if p.tag != edit.parent.tag:
                raise ComplianceError(f"{edit}: parent tag mismatch ({p.tag})")
            kid = p.kids.get(edit.link)
            if kid is None:
                raise ComplianceError(f"{edit}: parent slot {edit.link!r} is empty")
            if kid.uri != edit.node.uri or kid.tag != edit.node.tag:
                raise ComplianceError(f"{edit}: slot holds {kid.node}, not {edit.node}")
        elif isinstance(edit, Load):
            if edit.node.uri in sim.index or edit.node.uri in loaded:
                raise ComplianceError(f"{edit}: URI {edit.node.uri} is not fresh")
            loaded.add(edit.node.uri)
        elif isinstance(edit, Unload):
            n = sim.index.get(edit.node.uri)
            if n is None:
                raise ComplianceError(f"{edit}: node URI unknown")
            if n.tag != edit.node.tag:
                raise ComplianceError(f"{edit}: node tag mismatch ({n.tag})")
            for link, kid_uri in edit.kids:
                kid = n.kids.get(link)
                if kid is None or kid.uri != kid_uri:
                    raise ComplianceError(f"{edit}: kid {link!r} is not {kid_uri}")
            for link, value in edit.lits:
                if link not in n.lits or not literal_eq(n.lits[link], value):
                    raise ComplianceError(f"{edit}: literal {link!r} is not {value!r}")
        elif isinstance(edit, Update):
            n = sim.index.get(edit.node.uri)
            if n is None:
                raise ComplianceError(f"{edit}: node URI unknown")
            for link, value in edit.old_lits:
                if link not in n.lits or not literal_eq(n.lits[link], value):
                    raise ComplianceError(f"{edit}: old literal {link!r} is not {value!r}")
        # Attach needs no extra checks beyond the strict runtime validation
        # below (the type system ensures the rest already).
        try:
            sim.process_edit(edit)
        except PatchError as exc:
            raise ComplianceError(f"{edit}: {exc.message}") from None
