"""Constructor signatures Σ and the sort hierarchy (Section 3.3).

A :class:`Signature` records, for one constructor tag,

* the kid links ``x1:T1, ..., xm:Tm`` (ordered — the order defines the
  canonical traversal order of subtrees),
* the literal links ``y1:B1, ..., yn:Bn``, and
* the result sort ``T``.

The :class:`SignatureRegistry` plays the role of Σ in the typing judgment
``Σ ⊢ e : (R • S) ▷ (R' • S')`` and additionally owns the sort hierarchy
used to decide subtyping.  The pre-defined root signature
``(<RootLink: Any>, <>) -> Root`` is always present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable, Mapping, Optional

from .node import Link, ROOT_LINK, ROOT_TAG, Tag
from .types import ANY, LitType, ROOT_SORT, Type
from .uris import URIGen


class SignatureError(Exception):
    """Raised for malformed or conflicting signature declarations."""


@dataclass(frozen=True)
class Signature:
    """The signature of a single constructor tag.

    *Variadic* signatures model the artifact's ``DiffableList``: a list
    node has any number of kids, all of the element sort, reachable via
    the index links ``"0"``, ``"1"``, ....  ``variadic`` holds the element
    sort (and ``kids`` must then be empty).
    """

    tag: Tag
    kids: tuple[tuple[Link, Type], ...]
    lits: tuple[tuple[Link, LitType], ...]
    result: Type
    variadic: Optional[Type] = None

    def __post_init__(self) -> None:
        links = [l for l, _ in self.kids] + [l for l, _ in self.lits]
        if len(set(links)) != len(links):
            raise SignatureError(f"duplicate links in signature of {self.tag}: {links}")
        if self.variadic is not None and self.kids:
            raise SignatureError(f"variadic signature {self.tag} cannot declare kid links")

    @property
    def is_variadic(self) -> bool:
        return self.variadic is not None

    # ``kid_links``/``lit_links``/``lit_types`` are cached: signatures are
    # frozen and consulted on every typechecked edit and every verified
    # node, so rebuilding the tuples per call showed up in the atomic-patch
    # profile.  (cached_property writes straight into ``__dict__``, which
    # a frozen dataclass without ``__slots__`` still has; dataclass
    # eq/hash look only at fields, so caching does not perturb them.)

    @cached_property
    def kid_links(self) -> tuple[Link, ...]:
        if self.variadic is not None:
            raise SignatureError(
                f"{self.tag} is variadic; kid links depend on the node arity"
            )
        return tuple(l for l, _ in self.kids)

    def kid_links_for(self, arity: int) -> tuple[Link, ...]:
        """Kid links of a node with the given arity."""
        if self.variadic is not None:
            return tuple(str(i) for i in range(arity))
        return tuple(l for l, _ in self.kids)

    @cached_property
    def lit_links(self) -> tuple[Link, ...]:
        return tuple(l for l, _ in self.lits)

    @cached_property
    def lit_link_set(self) -> frozenset[Link]:
        return frozenset(l for l, _ in self.lits)

    @cached_property
    def lit_types(self) -> dict[Link, LitType]:
        return dict(self.lits)

    def kid_type(self, link: Link) -> Type:
        if self.variadic is not None:
            if link.isdigit():
                return self.variadic
            raise SignatureError(f"variadic {self.tag} has no kid link {link!r}")
        for l, t in self.kids:
            if l == link:
                return t
        raise SignatureError(f"{self.tag} has no kid link {link!r}")

    def lit_type(self, link: Link) -> LitType:
        for l, t in self.lits:
            if l == link:
                return t
        raise SignatureError(f"{self.tag} has no literal link {link!r}")

    def __str__(self) -> str:
        if self.variadic is not None:
            ks = f"{self.variadic}..."
        else:
            ks = ", ".join(f"{l}:{t}" for l, t in self.kids)
        ls = ", ".join(f"{l}:{t}" for l, t in self.lits)
        return f"{self.tag} : (<{ks}>, <{ls}>) -> {self.result}"


#: Pre-defined signature of the root node.
ROOT_SIGNATURE = Signature(
    tag=ROOT_TAG,
    kids=((ROOT_LINK, ANY),),
    lits=(),
    result=ROOT_SORT,
)


@dataclass
class SignatureRegistry:
    """Σ: tag signatures plus the sort subtyping hierarchy."""

    _sigs: dict[Tag, Signature] = field(default_factory=dict)
    # direct supersorts of each declared sort
    _supers: dict[Type, set[Type]] = field(default_factory=dict)
    # memoized transitive supersort sets (invalidated on declaration)
    _closure: dict[Type, frozenset[Type]] = field(default_factory=dict)
    # fresh-URI source shared by all trees built against this registry
    urigen: URIGen = field(default_factory=URIGen)

    def __post_init__(self) -> None:
        self._sigs.setdefault(ROOT_TAG, ROOT_SIGNATURE)
        self._supers.setdefault(ROOT_SORT, set())

    # -- sorts ------------------------------------------------------------

    def declare_sort(self, s: Type, supers: Iterable[Type] = ()) -> Type:
        """Declare a sort, optionally as a subsort of existing sorts."""
        if s == ANY:
            raise SignatureError("Any is predeclared and cannot be redefined")
        entry = self._supers.setdefault(s, set())
        for sup in supers:
            if sup != ANY:
                self._supers.setdefault(sup, set())
                entry.add(sup)
        self._closure.clear()
        return s

    def supersorts(self, s: Type) -> frozenset[Type]:
        """All sorts ``U`` with ``s <: U`` (reflexive-transitive, plus Any)."""
        cached = self._closure.get(s)
        if cached is not None:
            return cached
        seen: set[Type] = {s, ANY}
        stack = list(self._supers.get(s, ()))
        while stack:
            sup = stack.pop()
            if sup not in seen:
                seen.add(sup)
                stack.extend(self._supers.get(sup, ()))
        result = frozenset(seen)
        self._closure[s] = result
        return result

    def is_subtype(self, t: Type, u: Type) -> bool:
        """Decide ``t <: u``."""
        if u == ANY or t == u:
            return True
        return u in self.supersorts(t)

    # -- signatures -------------------------------------------------------

    def declare(self, sig: Signature) -> Signature:
        """Declare a constructor signature; tags must be unique."""
        existing = self._sigs.get(sig.tag)
        if existing is not None and existing != sig:
            raise SignatureError(f"conflicting redeclaration of tag {sig.tag}")
        self._sigs[sig.tag] = sig
        self.declare_sort(sig.result)
        for _, t in sig.kids:
            if t != ANY:
                self.declare_sort(t)
        if sig.variadic is not None and sig.variadic != ANY:
            self.declare_sort(sig.variadic)
        return sig

    def __contains__(self, tag: Tag) -> bool:
        return tag in self._sigs

    def __getitem__(self, tag: Tag) -> Signature:
        try:
            return self._sigs[tag]
        except KeyError:
            raise SignatureError(f"unknown tag {tag!r}") from None

    def get(self, tag: Tag) -> Signature | None:
        return self._sigs.get(tag)

    @property
    def tags(self) -> tuple[Tag, ...]:
        return tuple(self._sigs)

    def constructors_of(self, s: Type) -> list[Signature]:
        """All declared signatures whose result sort is a subtype of ``s``."""
        return [sig for sig in self._sigs.values() if self.is_subtype(sig.result, s)]

    def check_lits(self, tag: Tag, lits: Mapping[Link, Any]) -> None:
        """Check the T-Load/T-Update literal side conditions ``⊢ l : B``."""
        sig = self[tag]
        if set(lits) != sig.lit_link_set:
            raise SignatureError(
                f"{tag}: literal links {sorted(lits)} do not match "
                f"signature links {sorted(sig.lit_links)}"
            )
        types = sig.lit_types
        for link, value in lits.items():
            base = types[link]
            if not base.check(value):
                raise SignatureError(f"{tag}.{link}: literal {value!r} is not a {base}")
