"""Inversion of truechange edit scripts.

Every truechange edit has an exact inverse (detach ↔ attach, load ↔
unload, update swaps its literal lists), and the inverse of a well-typed
script — the reversed sequence of inverted edits — is well-typed again
and undoes the patch.  This is what makes truechange scripts suitable for
version control: storing ∆ gives both directions of the history.

The metatheory is checked by the test suite: for every script produced by
truediff, ``patch(∆); patch(invert(∆))`` restores the original tree, and
``invert(∆)`` typechecks.
"""

from __future__ import annotations

from .edits import (
    Attach,
    Detach,
    Edit,
    EditScript,
    Insert,
    Load,
    PrimitiveEdit,
    Remove,
    Unload,
    Update,
)


def invert_edit(edit: Edit) -> Edit:
    """The inverse of a single edit operation."""
    if isinstance(edit, Detach):
        return Attach(edit.node, edit.link, edit.parent)
    if isinstance(edit, Attach):
        return Detach(edit.node, edit.link, edit.parent)
    if isinstance(edit, Load):
        return Unload(edit.node, edit.kids, edit.lits)
    if isinstance(edit, Unload):
        return Load(edit.node, edit.kids, edit.lits)
    if isinstance(edit, Update):
        return Update(edit.node, edit.new_lits, edit.old_lits)
    if isinstance(edit, Insert):
        return Remove(edit.node, edit.link, edit.parent, edit.kids, edit.lits)
    if isinstance(edit, Remove):
        return Insert(edit.node, edit.kids, edit.lits, edit.link, edit.parent)
    raise TypeError(f"unknown edit kind {type(edit).__name__}")


def invert_script(script: EditScript) -> EditScript:
    """The inverse script: inverted edits in reverse order."""
    return EditScript(invert_edit(e) for e in reversed(list(script)))
