"""The truediff structural diffing algorithm (Section 4).

truediff computes the difference between a source tree ``this`` and a
target tree ``that`` in four steps, each linear in the tree sizes
(Theorem 4.1):

1. **Prepare subtree equivalence relations** — done at tree construction
   time: every :class:`~repro.core.tree.TNode` carries a structural and a
   literal SHA-256 hash (Section 4.1).
2. **Find reuse candidates** (:func:`assign_shares`) — all structurally
   equivalent subtrees are assigned the same
   :class:`~repro.core.registry.SubtreeShare`; source subtrees are
   registered as *available* resources, and identical subtrees at matching
   positions are *preemptively assigned* to each other (Section 4.2).
3. **Select reuse candidates** (:func:`assign_subtrees`) — traverse the
   target tree highest-first and greedily acquire available source
   subtrees, preferring exact (literally equivalent) copies; subtrees are
   linear resources and are acquired at most once (Section 4.3).
4. **Compute edit script** (:func:`compute_edits`) — simultaneous
   traversal emitting truechange edits into an :class:`EditBuffer` that
   orders negative edits (detach/unload) before positive ones
   (load/attach), guaranteeing well-typedness of the result (Section 4.4).

The top-level entry point is :func:`diff` (the paper's ``compareTo``),
which returns the edit script together with the *patched tree*: a tree
that is equal to the target but reuses nodes (and thus URIs) of the
source, ready for subsequent diffing rounds.

:class:`DiffOptions` exposes the knobs exercised by the ablation
benchmarks; the defaults correspond to the paper's algorithm.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Optional

from .edits import Attach, Detach, EditScript, Load, Unload, Update
from .node import Link, Node, ROOT_LINK, ROOT_NODE
from .registry import SubtreeRegistry
from .tree import TNode, clear_diff_state
from .uris import URIGen


@dataclass(frozen=True)
class DiffOptions:
    """Configuration knobs for truediff (defaults = the paper's algorithm).

    ``prefer_literal_matches``
        Step 3 first tries to acquire an exact copy (literal equivalence)
        before settling for any structurally equivalent candidate.
    ``height_first``
        Step 3 traverses target subtrees highest-first to avoid subtree
        fragmentation.  Disabling processes the queue in FIFO order.
    ``coalesce``
        Merge Load+Attach / Detach+Unload pairs into compound edits for the
        conciseness metric.
    """

    prefer_literal_matches: bool = True
    height_first: bool = True
    coalesce: bool = True


DEFAULT_OPTIONS = DiffOptions()


class EditBuffer:
    """Collects edits, separating negative from positive edits (Section 4.4).

    The final script contains all negative edits (detach, unload) before
    all positive edits (load, attach, update), which ensures a subtree is
    detached before it is reattached elsewhere.
    """

    __slots__ = ("negatives", "positives")

    def __init__(self) -> None:
        self.negatives: list[Any] = []
        self.positives: list[Any] = []

    def detach(self, tree: TNode, link: Link, parent: Node) -> None:
        self.negatives.append(Detach(tree.node, link, parent))

    def unload(self, tree: TNode) -> None:
        kids = tuple((l, k.uri) for l, k in tree.kid_items)
        self.negatives.append(Unload(tree.node, kids, tree.lit_items))

    def load(self, tree: TNode) -> None:
        kids = tuple((l, k.uri) for l, k in tree.kid_items)
        self.positives.append(Load(tree.node, kids, tree.lit_items))

    def attach(self, tree: TNode, link: Link, parent: Node) -> None:
        self.positives.append(Attach(tree.node, link, parent))

    def update(self, this: TNode, that: TNode) -> None:
        self.positives.append(Update(this.node, this.lit_items, that.lit_items))

    def to_script(self, coalesce: bool = True) -> EditScript:
        script = EditScript(self.negatives + self.positives)
        return script.coalesced() if coalesce else script


def assign_tree(this: TNode, that: TNode) -> None:
    """Record the symmetric assignment ``this <-> that`` (Section 4.3)."""
    this.assigned = that
    that.assigned = this


# ---------------------------------------------------------------------------
# Step 2: find reuse candidates
# ---------------------------------------------------------------------------


def assign_shares(this: TNode, that: TNode, reg: SubtreeRegistry) -> None:
    """Assign shares to all subtrees of ``this`` and ``that``; register
    source subtrees as available; preemptively assign identical subtrees
    encountered at matching positions (Section 4.2)."""
    reg.assign_share(this)
    reg.assign_share(that)
    if this.share is that.share:
        # structurally equivalent trees at matching positions: preemptive
        # assignment, stop recursing (the whole subtree is settled; Step 4
        # patches up differing literals with Update edits)
        assign_tree(this, that)
    else:
        _assign_shares_rec(this, that, reg)


def _assign_shares_rec(this: TNode, that: TNode, reg: SubtreeRegistry) -> None:
    if this.tag == that.tag:
        # recurse simultaneously; this node itself may still be moved
        this.share.register_available(this)
        if this.sig.is_variadic:
            # list kids are aligned by content, not position, so that an
            # insertion does not shift every later element onto the wrong
            # partner (the artifact's DiffableList alignment)
            for kid_this, kid_that in _align_list(this.kids, that.kids):
                if kid_this is None:
                    for t in kid_that.iter_subtree():
                        reg.assign_share(t)
                elif kid_that is None:
                    for t in kid_this.iter_subtree():
                        reg.assign_share_and_register(t)
                else:
                    assign_shares(kid_this, kid_that, reg)
        else:
            for kid_this, kid_that in zip(this.kids, that.kids):
                assign_shares(kid_this, kid_that, reg)
    else:
        # recurse separately: all source subtrees become available,
        # all target subtrees merely get shares (they are required)
        for t in this.iter_subtree():
            reg.assign_share_and_register(t)
        for t in that.iter_subtree():
            reg.assign_share(t)


def _align_list(
    this_kids: tuple[TNode, ...], that_kids: tuple[TNode, ...]
) -> list[tuple[Optional[TNode], Optional[TNode]]]:
    """Align two element sequences: exact (identity-hash) matches become
    pairs via a patience-style longest increasing subsequence; leftover
    elements inside the gaps are paired positionally (they likely
    correspond but were edited); the rest are unpaired."""
    src_pos: dict[bytes, list[int]] = {}
    for i, k in enumerate(this_kids):
        src_pos.setdefault(k.identity_hash, []).append(i)
    dst_pos: dict[bytes, list[int]] = {}
    for j, k in enumerate(that_kids):
        dst_pos.setdefault(k.identity_hash, []).append(j)

    # unique-unique anchors, thinned to an increasing subsequence
    anchors = sorted(
        (pos[0], dst_pos[h][0])
        for h, pos in src_pos.items()
        if len(pos) == 1 and len(dst_pos.get(h, ())) == 1
    )
    kept = _longest_increasing(anchors)

    # greedy in-gap matching of equal elements (handles duplicates)
    exact: list[tuple[int, int]] = []
    bounds = [(-1, -1)] + kept + [(len(this_kids), len(that_kids))]
    for (pi, pj), (ni, nj) in zip(bounds, bounds[1:]):
        i = pi + 1
        for j in range(pj + 1, nj):
            h = that_kids[j].identity_hash
            scan = i
            while scan < ni and this_kids[scan].identity_hash != h:
                scan += 1
            if scan < ni:
                exact.append((scan, j))
                i = scan + 1
        if (ni, nj) != (len(this_kids), len(that_kids)):
            exact.append((ni, nj))
    exact.sort()

    # emit pairs, zipping gap leftovers positionally
    out: list[tuple[Optional[TNode], Optional[TNode]]] = []
    prev_i = prev_j = -1
    for ai, aj in exact + [(len(this_kids), len(that_kids))]:
        gap_src = list(range(prev_i + 1, ai))
        gap_dst = list(range(prev_j + 1, aj))
        for gi, gj in zip(gap_src, gap_dst):
            out.append((this_kids[gi], that_kids[gj]))
        for gi in gap_src[len(gap_dst):]:
            out.append((this_kids[gi], None))
        for gj in gap_dst[len(gap_src):]:
            out.append((None, that_kids[gj]))
        if ai < len(this_kids):
            out.append((this_kids[ai], that_kids[aj]))
        prev_i, prev_j = ai, aj
    return out


def _longest_increasing(pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Longest subsequence of (sorted-by-i) pairs with increasing j."""
    if not pairs:
        return []
    import bisect

    tails: list[int] = []  # tails[k] = smallest ending j of an LIS of length k+1
    links: list[int] = []  # predecessor indices
    tail_idx: list[int] = []
    for idx, (_, j) in enumerate(pairs):
        k = bisect.bisect_left(tails, j)
        if k == len(tails):
            tails.append(j)
            tail_idx.append(idx)
        else:
            tails[k] = j
            tail_idx[k] = idx
        links.append(tail_idx[k - 1] if k > 0 else -1)
    out = []
    cur = tail_idx[len(tails) - 1]
    while cur != -1:
        out.append(pairs[cur])
        cur = links[cur]
    out.reverse()
    return out


# ---------------------------------------------------------------------------
# Step 3: select reuse candidates
# ---------------------------------------------------------------------------


def take_tree(reg: SubtreeRegistry, src: TNode, that: TNode) -> None:
    """Acquire source subtree ``src`` for target subtree ``that``.

    Subtrees are linear resources: the entire subtree of ``src`` is
    deregistered so it cannot be reused elsewhere, and preemptive
    assignments of smaller subtrees that conflict with this acquisition
    are undone (the freed partners become available / required again).
    """
    # Undo preemptive pairs inside `that`: their source partners are freed
    # and become available again for other targets.
    for t2 in that.iter_proper_subtrees():
        s2 = t2.assigned
        if s2 is not None:
            t2.assigned = None
            s2.assigned = None
            for s in s2.iter_subtree():
                reg.assign_share_and_register(s)
    # Consume src: deregister its whole subtree; preemptive pairs whose
    # source lies inside src are undone, making the target partner
    # required again (it will be reached by the Step-3 queue).
    for s in src.iter_subtree():
        if s.share is not None:
            s.share.deregister(s)
        tp = s.assigned
        if tp is not None:
            s.assigned = None
            tp.assigned = None
            for t in tp.iter_subtree():
                reg.assign_share(t)
    assign_tree(src, that)


def assign_subtrees(
    that: TNode,
    reg: SubtreeRegistry,
    options: DiffOptions = DEFAULT_OPTIONS,
) -> None:
    """Traverse target subtrees highest-first and greedily acquire
    available source subtrees (Section 4.3)."""
    counter = 0  # tie-breaker: TNodes are not ordered
    heap: list[tuple[int, int, TNode]] = []

    def push(t: TNode) -> None:
        nonlocal counter
        priority = -t.height if options.height_first else counter
        heapq.heappush(heap, (priority, counter, t))
        counter += 1

    push(that)
    while heap:
        level = heap[0][0]
        nexts: list[TNode] = []
        while heap and heap[0][0] == level:
            nexts.append(heapq.heappop(heap)[2])
        # skip subtrees already settled by preemptive assignment
        todo = [t for t in nexts if t.assigned is None]
        unassigned: list[TNode] = []
        if options.prefer_literal_matches:
            for t in todo:
                src = t.share.take_preferred(t)
                if src is not None:
                    take_tree(reg, src, t)
                else:
                    unassigned.append(t)
        else:
            unassigned = todo
        still_unassigned: list[TNode] = []
        for t in unassigned:
            src = t.share.take_any()
            if src is not None:
                take_tree(reg, src, t)
            else:
                still_unassigned.append(t)
        for t in still_unassigned:
            for kid in t.kids:
                push(kid)


# ---------------------------------------------------------------------------
# Step 4: compute edit script
# ---------------------------------------------------------------------------


def update_lits(this: TNode, that: TNode, buf: EditBuffer) -> TNode:
    """Reuse the structurally equivalent subtree ``this`` for ``that``,
    emitting Update edits where literals differ.  Returns the patched
    subtree (same URIs as ``this``, literals of ``that``)."""
    if this.literal_hash == that.literal_hash:
        return this
    if this.lits != that.lits:
        buf.update(this, that)
    new_kids = [update_lits(a, b, buf) for a, b in zip(this.kids, that.kids)]
    if this.lits == that.lits and all(a is b for a, b in zip(new_kids, this.kids)):
        return this
    return TNode(this.sigs, this.sig, new_kids, that.lits, this.uri, validate=False)


def unload_unassigned(this: TNode, buf: EditBuffer) -> None:
    """Unload the source subtree ``this``, keeping assigned subtrees as
    detached roots for later reuse."""
    if this.assigned is not None:
        return  # remains a detached root; it will be reattached elsewhere
    buf.unload(this)
    for kid in this.kids:
        unload_unassigned(kid, buf)


def load_unassigned(that: TNode, buf: EditBuffer, urigen: URIGen) -> TNode:
    """Produce a tree equal to ``that``: reuse assigned source subtrees,
    load everything else afresh (bottom-up)."""
    src = that.assigned
    if src is not None:
        return update_lits(src, that, buf)
    kids = [load_unassigned(k, buf, urigen) for k in that.kids]
    node = TNode(that.sigs, that.sig, kids, that.lits, urigen.fresh(), validate=False)
    buf.load(node)
    return node


def compute_edits(
    this: TNode,
    that: TNode,
    parent: Node,
    link: Link,
    buf: EditBuffer,
    urigen: URIGen,
) -> TNode:
    """Simultaneous traversal of source and target (Section 4.4).

    Returns the patched subtree for this position.
    """
    if this.assigned is not None and this.assigned is that:
        # reuse this subtree in place, only updating literals
        return update_lits(this, that, buf)
    if this.assigned is None and that.assigned is None:
        t = _compute_edits_rec(this, that, buf, urigen)
        if t is not None:
            return t
    # replace this subtree by that subtree
    buf.detach(this, link, parent)
    unload_unassigned(this, buf)
    t = load_unassigned(that, buf, urigen)
    buf.attach(t, link, parent)
    return t


def _compute_edits_rec(
    this: TNode,
    that: TNode,
    buf: EditBuffer,
    urigen: URIGen,
) -> Optional[TNode]:
    """Try to keep ``this`` in place and recurse into the kids; gives up
    (returns None) when the constructors disagree.  A variadic (list) node
    can only be kept when the arity is unchanged — growth or shrinkage
    replaces the cheap list node itself while its elements are reused
    through their assignments."""
    if this.tag != that.tag:
        return None
    if this.sig.is_variadic and len(this.kids) != len(that.kids):
        return None
    new_kids = [
        compute_edits(kid_this, kid_that, this.node, l, buf, urigen)
        for (l, kid_this), kid_that in zip(this.kid_items, that.kids)
    ]
    if this.lits != that.lits:
        buf.update(this, that)
    if this.lits == that.lits and all(a is b for a, b in zip(new_kids, this.kids)):
        return this
    return TNode(this.sigs, this.sig, new_kids, that.lits, this.uri, validate=False)


# ---------------------------------------------------------------------------
# Main algorithm (the paper's compareTo)
# ---------------------------------------------------------------------------


def _dealias(that: TNode) -> TNode:
    """Rebuild the target tree with fresh node objects (same URIs) so the
    per-diff mutable state of source and target never aliases."""

    def go(n: TNode) -> TNode:
        return TNode(n.sigs, n.sig, [go(k) for k in n.kids], n.lits, n.uri, validate=False)

    return go(that)


def diff(
    this: TNode,
    that: TNode,
    options: DiffOptions = DEFAULT_OPTIONS,
    urigen: Optional[URIGen] = None,
) -> tuple[EditScript, TNode]:
    """Compute a truechange edit script transforming ``this`` into ``that``.

    Returns ``(script, patched)`` where ``patched`` equals ``that`` but
    reuses nodes of ``this`` wherever the script reuses them — suitable as
    the source of the next diffing round (the paper's ``compareTo``).
    """
    if urigen is None:
        urigen = this.sigs.urigen
    # The source tree must be a proper tree with unique node objects: its
    # URIs name distinct mutable positions.  (Use TNode.unshared() to
    # normalize a structure-shared tree first.)
    this_ids: set[int] = set()
    for n in this.iter_subtree():
        if id(n) in this_ids:
            raise ValueError(
                "source tree contains the same node object twice; "
                "normalize it with TNode.unshared() before diffing"
            )
        this_ids.add(id(n))
    # The target tree may share node objects with the source or with
    # itself (structure sharing is natural for immutable trees); rebuild
    # it with fresh objects in that case so per-diff state never aliases.
    that_ids: set[int] = set()
    aliased = False
    for n in that.iter_subtree():
        if id(n) in this_ids or id(n) in that_ids:
            aliased = True
            break
        that_ids.add(id(n))
    if aliased:
        that = _dealias(that)

    clear_diff_state(this, that)
    reg = SubtreeRegistry()
    assign_shares(this, that, reg)  # Step 2 (Step 1 ran at construction)
    assign_subtrees(that, reg, options)  # Step 3
    buf = EditBuffer()
    patched = compute_edits(this, that, ROOT_NODE, ROOT_LINK, buf, urigen)  # Step 4
    return buf.to_script(coalesce=options.coalesce), patched
