"""The truediff structural diffing algorithm (Section 4).

truediff computes the difference between a source tree ``this`` and a
target tree ``that`` in four steps, each linear in the tree sizes
(Theorem 4.1):

1. **Prepare subtree equivalence relations** — done at tree construction
   time: every :class:`~repro.core.tree.TNode` carries a structural and a
   literal digest (Section 4.1; see :func:`~repro.core.tree.set_hash_scheme`).
2. **Find reuse candidates** (:func:`assign_shares`) — all structurally
   equivalent subtrees are assigned the same
   :class:`~repro.core.registry.SubtreeShare`; source subtrees are
   registered as *available* resources, and identical subtrees at matching
   positions are *preemptively assigned* to each other (Section 4.2).
3. **Select reuse candidates** (:func:`assign_subtrees`) — traverse the
   target tree highest-first and greedily acquire available source
   subtrees, preferring exact (literally equivalent) copies; subtrees are
   linear resources and are acquired at most once (Section 4.3).
4. **Compute edit script** (:func:`compute_edits`) — simultaneous
   traversal emitting truechange edits into an :class:`EditBuffer` that
   orders negative edits (detach/unload) before positive ones
   (load/attach), guaranteeing well-typedness of the result (Section 4.4).

The top-level entry point is :func:`diff` (the paper's ``compareTo``),
which returns the edit script together with the *patched tree*: a tree
that is equal to the target but reuses nodes (and thus URIs) of the
source, ready for subsequent diffing rounds.  For repeated diffing
against an evolving document (the incremental driver's workload), wrap
the source in a :class:`DiffSession`, which amortizes the per-call
aliasing precheck across rounds.

Hot-path notes:

* Per-diff node state (``share``/``assigned``) is *generation-stamped*
  (see :mod:`repro.core.registry`): no O(n) ``clear_diff_state`` sweep
  runs per diff, and state left by earlier diffs is ignored lazily.
  Nodes the current diff never stamped may carry stale values, so every
  read outside Step 2 guards on ``node.gen``.
* All tree-shaped traversals here (Steps 2 and 4, plus ``_dealias``) use
  explicit stacks instead of recursion: 50k-deep trees diff without
  ``RecursionError``, and CPython's call overhead stays off the hot path.

:class:`DiffOptions` exposes the knobs exercised by the ablation
benchmarks; the defaults correspond to the paper's algorithm.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.observability import OBS, metrics as _metrics, span as _span

from .edits import Attach, Detach, EditScript, Load, Unload, Update
from .node import Link, Node, ROOT_LINK, ROOT_NODE
from .registry import SubtreeRegistry
from .tree import TNode, lits_equal, subtree_ids
from .uris import URIGen


@dataclass(frozen=True)
class DiffOptions:
    """Configuration knobs for truediff (defaults = the paper's algorithm).

    ``prefer_literal_matches``
        Step 3 first tries to acquire an exact copy (literal equivalence)
        before settling for any structurally equivalent candidate.
    ``height_first``
        Step 3 traverses target subtrees highest-first to avoid subtree
        fragmentation.  Disabling processes the queue in FIFO order.
    ``coalesce``
        Merge Load+Attach / Detach+Unload pairs into compound edits for the
        conciseness metric.
    ``typecheck``
        How emitted scripts are validated before they are returned:
        ``"static"`` (default) runs truelint's O(script) linear-typing
        preflight (:func:`repro.robustness.transaction.preflight_check_static`),
        ``"dynamic"`` replays the script through the full truechange
        checker (:func:`repro.core.typecheck.assert_well_typed`), and
        ``"none"`` skips validation.  Before the static preflight landed
        the fast configurations ran unchecked; now checked is the default
        at unchecked speed.
    ``engine``
        Which diff implementation a :class:`DiffSession` uses:
        ``"flat"`` runs Steps 2–4 over :class:`~repro.core.arena.TreeArena`
        columns (:mod:`repro.core.flatdiff`), ``"object"`` walks
        :class:`~repro.core.tree.TNode` objects, and ``"auto"`` (default)
        picks flat for sessions.  One-shot :func:`diff` always uses the
        object path (building two arenas for a single diff buys nothing).
        Both engines emit byte-identical scripts.
    """

    prefer_literal_matches: bool = True
    height_first: bool = True
    coalesce: bool = True
    typecheck: str = "static"
    engine: str = "auto"


DEFAULT_OPTIONS = DiffOptions()


class DiffStats:
    """Per-diff pass statistics (Section 6's explanatory quantities).

    A ``DiffStats`` is created per diff only when instrumentation is
    enabled (or by :func:`~repro.core.trace.diff_traced`, which always
    collects); the passes take ``stats=None`` by default and pay one
    ``is not None`` check per aggregate event, so the disabled diff path
    is unchanged.  With ``record_acquisitions=True`` every Step-3 take
    is additionally recorded as ``(src_uri, dst_height, tag, preferred)``
    — the raw material of a :class:`~repro.core.trace.DiffTrace`.
    """

    __slots__ = (
        "shares",
        "preemptive_pairs",
        "exact_acquisitions",
        "structural_acquisitions",
        "heap_pushes",
        "dealias_rebuilds",
        "loads",
        "unloads",
        "detaches",
        "attaches",
        "updates",
        "acquisitions",
    )

    def __init__(self, record_acquisitions: bool = False) -> None:
        self.shares = 0
        self.preemptive_pairs = 0
        self.exact_acquisitions = 0
        self.structural_acquisitions = 0
        self.heap_pushes = 0
        self.dealias_rebuilds = 0
        self.loads = 0
        self.unloads = 0
        self.detaches = 0
        self.attaches = 0
        self.updates = 0
        self.acquisitions: Optional[list[tuple[Any, int, str, bool]]] = (
            [] if record_acquisitions else None
        )

    def note_acquisition(self, src: TNode, that: TNode, preferred: bool) -> None:
        if preferred:
            self.exact_acquisitions += 1
        else:
            self.structural_acquisitions += 1
        if self.acquisitions is not None:
            self.acquisitions.append((src.uri, that.height, that.tag, preferred))

    def count_edits(self, buf: "EditBuffer") -> None:
        """Tally the buffer's edits by kind (pre-coalescing, so a later
        Insert/Remove compound counts as its Load/Attach, Detach/Unload
        parts)."""
        for e in buf.negatives:
            if type(e) is Detach:
                self.detaches += 1
            else:
                self.unloads += 1
        for e in buf.positives:
            t = type(e)
            if t is Load:
                self.loads += 1
            elif t is Attach:
                self.attaches += 1
            else:
                self.updates += 1

    def publish(self, source_size: int, target_size: int) -> None:
        """Push this diff's aggregates into the process-wide registry."""
        m = _metrics()
        m.counter("repro.diff.count").inc()
        m.counter("repro.diff.nodes").inc(source_size + target_size)
        m.counter("repro.diff.shares_created").inc(self.shares)
        m.counter("repro.diff.preemptive_pairs").inc(self.preemptive_pairs)
        m.counter("repro.diff.exact_acquisitions").inc(self.exact_acquisitions)
        m.counter("repro.diff.structural_acquisitions").inc(
            self.structural_acquisitions
        )
        m.counter("repro.diff.heap_pushes").inc(self.heap_pushes)
        m.counter("repro.diff.dealias_rebuilds").inc(self.dealias_rebuilds)
        m.counter("repro.diff.edits.load").inc(self.loads)
        m.counter("repro.diff.edits.unload").inc(self.unloads)
        m.counter("repro.diff.edits.detach").inc(self.detaches)
        m.counter("repro.diff.edits.attach").inc(self.attaches)
        m.counter("repro.diff.edits.update").inc(self.updates)
        if target_size:
            m.histogram("repro.diff.reuse_rate").observe(
                (target_size - self.loads) / target_size
            )


class EditBuffer:
    """Collects edits, separating negative from positive edits (Section 4.4).

    The final script contains all negative edits (detach, unload) before
    all positive edits (load, attach, update), which ensures a subtree is
    detached before it is reattached elsewhere.
    """

    __slots__ = ("negatives", "positives", "fresh")

    def __init__(self) -> None:
        self.negatives: list[Any] = []
        self.positives: list[Any] = []
        # every TNode object Step 4 creates (loads and spine rebuilds);
        # DiffSession uses this to roll its node-id cache forward in
        # O(changed) instead of rescanning the patched tree
        self.fresh: list[TNode] = []

    def detach(self, tree: TNode, link: Link, parent: Node) -> None:
        self.negatives.append(Detach(tree.node, link, parent))

    def unload(self, tree: TNode) -> None:
        kids = tuple([(l, k.uri) for l, k in tree.kid_items])
        self.negatives.append(Unload(tree.node, kids, tree.lit_items))

    def load(self, tree: TNode) -> None:
        kids = tuple([(l, k.uri) for l, k in tree.kid_items])
        self.positives.append(Load(tree.node, kids, tree.lit_items))
        self.fresh.append(tree)

    def attach(self, tree: TNode, link: Link, parent: Node) -> None:
        self.positives.append(Attach(tree.node, link, parent))

    def update(self, this: TNode, that: TNode) -> None:
        self.positives.append(Update(this.node, this.lit_items, that.lit_items))

    def to_script(self, coalesce: bool = True) -> EditScript:
        # no intermediate negatives+positives list: EditScript chains the
        # two buffers directly
        return EditScript.from_buffers(self.negatives, self.positives, coalesce)


def assign_tree(this: TNode, that: TNode) -> None:
    """Record the symmetric assignment ``this <-> that`` (Section 4.3)."""
    this.assigned = that
    that.assigned = this


# ---------------------------------------------------------------------------
# Step 2: find reuse candidates
# ---------------------------------------------------------------------------


def assign_shares(
    this: TNode,
    that: TNode,
    reg: SubtreeRegistry,
    stats: Optional[DiffStats] = None,
) -> None:
    """Assign shares to all subtrees of ``this`` and ``that``; register
    source subtrees as available; preemptively assign identical subtrees
    encountered at matching positions (Section 4.2).

    Iterative worklist of matched position pairs; processing order is the
    same left-to-right DFS as the paper's recursion, so shares register
    candidates leftmost-first.
    """
    assign = reg.assign_share
    # (source, target) position pairs; one side may be None (unmatched
    # list elements).  LIFO + reversed pushes = left-to-right DFS.
    pairs: list[tuple[Optional[TNode], Optional[TNode]]] = [(this, that)]
    while pairs:
        a, b = pairs.pop()
        if b is None:
            # unmatched source element: whole subtree becomes available
            stack = [a]
            while stack:
                t = stack.pop()
                assign(t).register_available(t)
                stack.extend(reversed(t.kids))
            continue
        if a is None:
            # unmatched target element: subtree merely gets shares
            stack = [b]
            while stack:
                t = stack.pop()
                assign(t)
                stack.extend(reversed(t.kids))
            continue
        share_a = assign(a)
        if share_a is assign(b):
            # structurally equivalent trees at matching positions:
            # preemptive assignment, stop descending (the whole subtree is
            # settled; Step 4 patches up differing literals with Updates)
            assign_tree(a, b)
            if stats is not None:
                stats.preemptive_pairs += 1
        elif a.tag == b.tag:
            # descend simultaneously; this node itself may still be moved
            share_a.register_available(a)
            if a.sig.is_variadic:
                # list kids are aligned by content, not position, so that
                # an insertion does not shift every later element onto the
                # wrong partner (the artifact's DiffableList alignment)
                aligned = _align_list(a.kids, b.kids)
                for i in range(len(aligned) - 1, -1, -1):
                    pairs.append(aligned[i])
            else:
                for i in range(len(a.kids) - 1, -1, -1):
                    pairs.append((a.kids[i], b.kids[i]))
        else:
            # unrelated constructors: all source subtrees become available,
            # all target subtrees merely get shares (they are required)
            stack = [a]
            while stack:
                t = stack.pop()
                assign(t).register_available(t)
                stack.extend(reversed(t.kids))
            stack = [b]
            while stack:
                t = stack.pop()
                assign(t)
                stack.extend(reversed(t.kids))


def _align_positions(
    src_keys: Sequence[Any], dst_keys: Sequence[Any]
) -> list[tuple[int, int]]:
    """Align two element-key sequences: exact (equal-key) matches become
    pairs via a patience-style longest increasing subsequence; leftover
    elements inside the gaps are paired positionally (they likely
    correspond but were edited); the rest are unpaired.

    Returns index pairs into the two sequences, with ``-1`` marking an
    unmatched side.  Shared by the object path (keys = cached identity
    hashes) and the flat path (keys = fingerprint pairs pulled from
    arena columns) so both compute the same alignment by construction.
    """
    src_pos: dict[Any, list[int]] = {}
    for i, h in enumerate(src_keys):
        src_pos.setdefault(h, []).append(i)
    dst_pos: dict[Any, list[int]] = {}
    for j, h in enumerate(dst_keys):
        dst_pos.setdefault(h, []).append(j)

    # unique-unique anchors, thinned to an increasing subsequence
    anchors = sorted(
        (pos[0], dst_pos[h][0])
        for h, pos in src_pos.items()
        if len(pos) == 1 and len(dst_pos.get(h, ())) == 1
    )
    kept = _longest_increasing(anchors)

    # greedy in-gap matching of equal elements (handles duplicates)
    exact: list[tuple[int, int]] = []
    bounds = [(-1, -1)] + kept + [(len(src_keys), len(dst_keys))]
    for (pi, pj), (ni, nj) in zip(bounds, bounds[1:]):
        i = pi + 1
        for j in range(pj + 1, nj):
            h = dst_keys[j]
            scan = i
            while scan < ni and src_keys[scan] != h:
                scan += 1
            if scan < ni:
                exact.append((scan, j))
                i = scan + 1
        if (ni, nj) != (len(src_keys), len(dst_keys)):
            exact.append((ni, nj))
    exact.sort()

    # emit pairs, zipping gap leftovers positionally
    out: list[tuple[int, int]] = []
    prev_i = prev_j = -1
    for ai, aj in exact + [(len(src_keys), len(dst_keys))]:
        gap_src = list(range(prev_i + 1, ai))
        gap_dst = list(range(prev_j + 1, aj))
        for gi, gj in zip(gap_src, gap_dst):
            out.append((gi, gj))
        for gi in gap_src[len(gap_dst):]:
            out.append((gi, -1))
        for gj in gap_dst[len(gap_src):]:
            out.append((-1, gj))
        if ai < len(src_keys):
            out.append((ai, aj))
        prev_i, prev_j = ai, aj
    return out


def _align_list(
    this_kids: tuple[TNode, ...], that_kids: tuple[TNode, ...]
) -> list[tuple[Optional[TNode], Optional[TNode]]]:
    """Node-level view of :func:`_align_positions` (unmatched = None)."""
    aligned = _align_positions(
        [k.identity_hash for k in this_kids],
        [k.identity_hash for k in that_kids],
    )
    return [
        (this_kids[i] if i >= 0 else None, that_kids[j] if j >= 0 else None)
        for i, j in aligned
    ]


def _longest_increasing(pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Longest subsequence of (sorted-by-i) pairs with increasing j."""
    if not pairs:
        return []
    bisect_left = bisect.bisect_left
    tails: list[int] = []  # tails[k] = smallest ending j of an LIS of length k+1
    links: list[int] = []  # predecessor indices
    tail_idx: list[int] = []
    for idx, (_, j) in enumerate(pairs):
        k = bisect_left(tails, j)
        if k == len(tails):
            tails.append(j)
            tail_idx.append(idx)
        else:
            tails[k] = j
            tail_idx[k] = idx
        links.append(tail_idx[k - 1] if k > 0 else -1)
    out = []
    cur = tail_idx[len(tails) - 1]
    while cur != -1:
        out.append(pairs[cur])
        cur = links[cur]
    out.reverse()
    return out


# ---------------------------------------------------------------------------
# Step 3: select reuse candidates
# ---------------------------------------------------------------------------


def take_tree(reg: SubtreeRegistry, src: TNode, that: TNode) -> None:
    """Acquire source subtree ``src`` for target subtree ``that``.

    Subtrees are linear resources: the entire subtree of ``src`` is
    deregistered so it cannot be reused elsewhere, and preemptive
    assignments of smaller subtrees that conflict with this acquisition
    are undone (the freed partners become available / required again).

    Reads of ``share``/``assigned`` are generation-guarded: these loops
    walk entire subtrees, which may contain nodes below preemptive pairs
    that Step 2 never stamped (their fields are stale, not cleared).
    """
    gen = reg.gen
    # Undo preemptive pairs inside `that`: their source partners are freed
    # and become available again for other targets.
    for t2 in that.iter_proper_subtrees():
        s2 = t2.assigned if t2.gen == gen else None
        if s2 is not None:
            t2.assigned = None
            s2.assigned = None
            for s in s2.iter_subtree():
                reg.assign_share_and_register(s)
    # Consume src: deregister its whole subtree; preemptive pairs whose
    # source lies inside src are undone, making the target partner
    # required again (it will be reached by the Step-3 queue).
    for s in src.iter_subtree():
        if s.gen != gen:
            continue
        if s.share is not None:
            s.share.deregister(s)
        tp = s.assigned
        if tp is not None:
            s.assigned = None
            tp.assigned = None
            for t in tp.iter_subtree():
                reg.assign_share(t)
    assign_tree(src, that)


def assign_subtrees(
    that: TNode,
    reg: SubtreeRegistry,
    options: DiffOptions = DEFAULT_OPTIONS,
    stats: Optional[DiffStats] = None,
) -> None:
    """Traverse target subtrees highest-first and greedily acquire
    available source subtrees (Section 4.3).

    Every node that enters the queue was stamped by Step 2 (unstamped
    nodes only occur strictly below preemptive pairs, whose kids are
    never enqueued), so ``share``/``assigned`` reads here are safe
    without generation guards.
    """
    counter = 0  # tie-breaker: TNodes are not ordered
    heap: list[tuple[int, int, TNode]] = []

    def push(t: TNode) -> None:
        nonlocal counter
        priority = -t.height if options.height_first else counter
        heapq.heappush(heap, (priority, counter, t))
        counter += 1

    push(that)
    while heap:
        level = heap[0][0]
        nexts: list[TNode] = []
        while heap and heap[0][0] == level:
            nexts.append(heapq.heappop(heap)[2])
        # skip subtrees already settled by preemptive assignment
        todo = [t for t in nexts if t.assigned is None]
        unassigned: list[TNode] = []
        if options.prefer_literal_matches:
            for t in todo:
                src = t.share.take_preferred(t)
                if src is not None:
                    if stats is not None:
                        stats.note_acquisition(src, t, True)
                    take_tree(reg, src, t)
                else:
                    unassigned.append(t)
        else:
            unassigned = todo
        still_unassigned: list[TNode] = []
        for t in unassigned:
            src = t.share.take_any()
            if src is not None:
                if stats is not None:
                    stats.note_acquisition(src, t, False)
                take_tree(reg, src, t)
            else:
                still_unassigned.append(t)
        for t in still_unassigned:
            for kid in t.kids:
                push(kid)
    if stats is not None:
        stats.heap_pushes += counter


# ---------------------------------------------------------------------------
# Step 4: compute edit script
# ---------------------------------------------------------------------------


def update_lits(this: TNode, that: TNode, buf: EditBuffer) -> TNode:
    """Reuse the structurally equivalent subtree ``this`` for ``that``,
    emitting Update edits where literals differ.  Returns the patched
    subtree (same URIs as ``this``, literals of ``that``).  Iterative."""
    if this.literal_hash == that.literal_hash:
        return this
    # post-order rebuild over matched (source, target) pairs
    stack: list[tuple[TNode, TNode, bool]] = [(this, that, False)]
    results: list[TNode] = []
    while stack:
        a, b, post = stack.pop()
        if not post:
            if a.literal_hash == b.literal_hash:
                results.append(a)
                continue
            # type-aware comparison: (1,) == (True,) under Python ==, but
            # they are different literals (see tree.lits_equal)
            if not lits_equal(a.lits, b.lits):
                buf.update(a, b)
            stack.append((a, b, True))
            for i in range(len(a.kids) - 1, -1, -1):
                stack.append((a.kids[i], b.kids[i], False))
        else:
            cnt = len(a.kids)
            if cnt:
                kids = results[-cnt:]
                del results[-cnt:]
            else:
                kids = []
            if lits_equal(a.lits, b.lits) and all(x is y for x, y in zip(kids, a.kids)):
                results.append(a)
            else:
                node = TNode(a.sigs, a.sig, kids, b.lits, a.uri, validate=False)
                buf.fresh.append(node)
                results.append(node)
    return results[0]


def unload_unassigned(this: TNode, buf: EditBuffer, gen: int) -> None:
    """Unload the source subtree ``this``, keeping assigned subtrees as
    detached roots for later reuse.  Iterative pre-order (a parent's
    Unload precedes its kids', which truechange typing requires)."""
    stack = [this]
    while stack:
        n = stack.pop()
        if n.gen == gen and n.assigned is not None:
            continue  # remains a detached root; reattached elsewhere
        buf.unload(n)
        stack.extend(reversed(n.kids))


def load_unassigned(that: TNode, buf: EditBuffer, urigen: URIGen, gen: int) -> TNode:
    """Produce a tree equal to ``that``: reuse assigned source subtrees,
    load everything else afresh (bottom-up).  Iterative post-order, so
    kids are loaded (and draw their fresh URIs) before their parent."""
    fresh = urigen.fresh
    stack: list[tuple[TNode, bool]] = [(that, False)]
    results: list[TNode] = []
    while stack:
        n, post = stack.pop()
        if not post:
            src = n.assigned if n.gen == gen else None
            if src is not None:
                results.append(update_lits(src, n, buf))
                continue
            stack.append((n, True))
            for i in range(len(n.kids) - 1, -1, -1):
                stack.append((n.kids[i], False))
        else:
            cnt = len(n.kids)
            if cnt:
                kids = results[-cnt:]
                del results[-cnt:]
            else:
                kids = []
            node = TNode(n.sigs, n.sig, kids, n.lits, fresh(), validate=False)
            buf.load(node)
            results.append(node)
    return results[0]


def compute_edits(
    this: TNode,
    that: TNode,
    parent: Node,
    link: Link,
    buf: EditBuffer,
    urigen: URIGen,
    gen: int,
) -> TNode:
    """Simultaneous traversal of source and target (Section 4.4).

    Returns the patched subtree for this position.  Iterative with an
    explicit frame stack; edits are emitted in the same order as the
    paper's recursion (replacements at pre-visit, literal updates of kept
    nodes at post-visit, after all kid edits).
    """
    # pre frames: (False, this, that, parent, link); post: (True, this, that, -, -)
    stack: list[tuple[bool, TNode, TNode, Optional[Node], Optional[Link]]] = [
        (False, this, that, parent, link)
    ]
    results: list[TNode] = []
    while stack:
        post, a, b, par, lnk = stack.pop()
        if post:
            cnt = len(a.kids)
            if cnt:
                kids = results[-cnt:]
                del results[-cnt:]
            else:
                kids = []
            if not lits_equal(a.lits, b.lits):
                buf.update(a, b)
            elif all(x is y for x, y in zip(kids, a.kids)):
                results.append(a)
                continue
            node = TNode(a.sigs, a.sig, kids, b.lits, a.uri, validate=False)
            buf.fresh.append(node)
            results.append(node)
            continue
        a_assigned = a.assigned if a.gen == gen else None
        if a_assigned is b:
            # reuse this subtree in place, only updating literals
            results.append(update_lits(a, b, buf))
            continue
        if (
            a_assigned is None
            and (b.assigned if b.gen == gen else None) is None
            and a.tag == b.tag
            and not (a.sig.is_variadic and len(a.kids) != len(b.kids))
        ):
            # keep `a` in place and descend into the kids; a variadic
            # (list) node is only kept at unchanged arity — growth or
            # shrinkage replaces the cheap list node itself while its
            # elements are reused through their assignments
            stack.append((True, a, b, None, None))
            a_node = a.node
            items = a.kid_items
            for i in range(len(items) - 1, -1, -1):
                l, kid_a = items[i]
                stack.append((False, kid_a, b.kids[i], a_node, l))
            continue
        # replace subtree `a` by subtree `b`
        buf.detach(a, lnk, par)
        unload_unassigned(a, buf, gen)
        t = load_unassigned(b, buf, urigen, gen)
        buf.attach(t, lnk, par)
        results.append(t)
    return results[0]


# ---------------------------------------------------------------------------
# Script validation
# ---------------------------------------------------------------------------


def validate_script(script: EditScript, sigs, mode: str = "static") -> None:
    """Validate an emitted edit script according to ``mode`` (see
    :class:`DiffOptions.typecheck`).

    ``"static"`` runs truelint's linear-typing preflight — O(script),
    which is O(changed) in the warm loop, so checked-by-default costs
    next to nothing; ``"dynamic"`` replays the full truechange checker;
    ``"none"`` skips.  Raises on an ill-typed script (which, for scripts
    this module emitted, would be a diff bug — Conjecture 4.2)."""
    if mode == "none" or script.is_empty:
        return
    if mode == "static":
        # deferred: repro.robustness imports repro.core
        from repro.robustness.transaction import preflight_check_static

        with _span("repro.diff.validate", {"mode": "static"}):
            preflight_check_static(script, sigs)
    elif mode == "dynamic":
        from .typecheck import assert_well_typed

        with _span("repro.diff.validate", {"mode": "dynamic"}):
            assert_well_typed(sigs, script)
    else:
        raise ValueError(
            f"unknown typecheck mode {mode!r}; "
            "expected 'static', 'dynamic', or 'none'"
        )


# ---------------------------------------------------------------------------
# Main algorithm (the paper's compareTo)
# ---------------------------------------------------------------------------


def _dealias(that: TNode) -> TNode:
    """Rebuild the target tree with fresh node objects (same URIs) so the
    per-diff mutable state of source and target never aliases.  Iterative."""
    stack: list[tuple[TNode, bool]] = [(that, False)]
    results: list[TNode] = []
    while stack:
        n, post = stack.pop()
        if not post:
            stack.append((n, True))
            for i in range(len(n.kids) - 1, -1, -1):
                stack.append((n.kids[i], False))
        else:
            cnt = len(n.kids)
            if cnt:
                kids = results[-cnt:]
                del results[-cnt:]
            else:
                kids = []
            results.append(TNode(n.sigs, n.sig, kids, n.lits, n.uri, validate=False))
    return results[0]


def _check_source(this: TNode) -> set[int]:
    """Verify the source tree has unique node objects; return its id set.

    A proper tree of ``size`` nodes has exactly ``size`` distinct object
    ids — structure sharing shrinks the set.
    """
    this_ids = subtree_ids(this)
    if len(this_ids) != this.size:
        raise ValueError(
            "source tree contains the same node object twice; "
            "normalize it with TNode.unshared() before diffing"
        )
    return this_ids


def _dealias_if_needed(that: TNode, this_ids: set[int]) -> TNode:
    """Rebuild ``that`` iff it shares node objects with the source tree
    (given by id set) or with itself."""
    that_ids = subtree_ids(that)
    if len(that_ids) != that.size or not that_ids.isdisjoint(this_ids):
        return _dealias(that)
    return that


def _diff_prepared(
    this: TNode,
    that: TNode,
    options: DiffOptions,
    urigen: URIGen,
    stats: Optional[DiffStats] = None,
) -> tuple[EditScript, TNode, EditBuffer]:
    """Steps 2-4 on trees already known to be alias-free.

    No ``clear_diff_state`` sweep: the fresh registry's generation stamp
    lazily invalidates whatever state earlier diffs left behind.

    The spans cost nothing when instrumentation is disabled (a shared
    no-op context manager); ``stats`` is filled when given and published
    to the metrics registry when instrumentation is enabled.
    """
    with _span("repro.diff", {"engine": "object"}) as root:
        reg = SubtreeRegistry()
        with _span("repro.diff.assign_shares"):  # Step 2 (Step 1 at construction)
            assign_shares(this, that, reg, stats)
        if stats is not None:
            stats.shares = len(reg)
        with _span("repro.diff.assign_subtrees"):  # Step 3
            assign_subtrees(that, reg, options, stats)
        buf = EditBuffer()
        with _span("repro.diff.compute_edits"):  # Step 4
            patched = compute_edits(
                this, that, ROOT_NODE, ROOT_LINK, buf, urigen, reg.gen
            )
        if stats is not None:
            stats.count_edits(buf)
            if OBS.enabled:
                stats.publish(this.size, that.size)
        script = buf.to_script(coalesce=options.coalesce)
        root.set_attrs(
            src_nodes=this.size,
            dst_nodes=that.size,
            edits=len(script),
            shares=stats.shares if stats is not None else 0,
        )
    return script, patched, buf


def diff(
    this: TNode,
    that: TNode,
    options: DiffOptions = DEFAULT_OPTIONS,
    urigen: Optional[URIGen] = None,
) -> tuple[EditScript, TNode]:
    """Compute a truechange edit script transforming ``this`` into ``that``.

    Returns ``(script, patched)`` where ``patched`` equals ``that`` but
    reuses nodes of ``this`` wherever the script reuses them — suitable as
    the source of the next diffing round (the paper's ``compareTo``).
    """
    if urigen is None:
        urigen = this.sigs.urigen
    # The source tree must be a proper tree with unique node objects: its
    # URIs name distinct mutable positions.  (Use TNode.unshared() to
    # normalize a structure-shared tree first.)  The target tree may share
    # node objects with the source or with itself (structure sharing is
    # natural for immutable trees); rebuild it with fresh objects in that
    # case so per-diff state never aliases.
    stats = DiffStats() if OBS.enabled else None
    dealiased = _dealias_if_needed(that, _check_source(this))
    if stats is not None and dealiased is not that:
        stats.dealias_rebuilds = 1
    script, patched, _ = _diff_prepared(this, dealiased, options, urigen, stats)
    validate_script(script, this.sigs, options.typecheck)
    return script, patched


class DiffSession:
    """Repeated diffing against an evolving source tree (Section 6's
    incremental workload).

    By default (``engine="auto"`` → ``"flat"``) the session keeps its
    source tree flattened in a :class:`~repro.core.arena.TreeArena` and
    runs Steps 2–4 over the arena columns (:mod:`repro.core.flatdiff`).
    Each target is flattened once (cached on the target's root), the
    emitted script rolls the source arena forward in O(changed) via
    :meth:`TreeArena.apply_patch`, and per-diff state lives in fresh
    slot-indexed arrays — which also makes the object path's aliasing
    precheck unnecessary: object sharing inside the target cannot alias
    any per-diff state.  The source must still be a proper tree (unique
    node objects); the strict flatten enforces that at construction.

    With ``engine="object"`` the session walks ``TNode`` objects instead.
    ``diff(this, that)`` pays an O(|this|) aliasing precheck on every
    call; the object session caches the source tree's node-id set and
    rolls it forward in O(changed) per round from the edit buffer's
    record of freshly created nodes, so the warm loop only scans each new
    target once.  With ``check_aliasing=False`` even that scan is
    skipped; the caller then guarantees every target is a fresh tree
    (true for reparsed documents) that shares no node objects with the
    session's tree.

    The object path's rolled-forward cache is a *superset* of the live
    tree's ids: ids of nodes that dropped out of the tree linger until
    the periodic exact rebuild (every :data:`REBUILD_EVERY` rounds).  To
    keep the check sound, the session pins the intervening tree versions
    so a lingering id can never be recycled for a new node — a cache hit
    therefore always means genuine object sharing with a recent version,
    which is handled by rebuilding the target (at worst a false alarm
    costing one O(n) rebuild, never a wrong diff).

    Both engines emit byte-identical scripts and validate them according
    to ``options.typecheck`` (static preflight by default).  The
    session's ``tree`` is always the latest patched tree; its URIs are
    stable across rounds wherever subtrees were reused.
    """

    #: rounds between exact rebuilds of the cached node-id set
    REBUILD_EVERY = 8

    __slots__ = (
        "tree",
        "options",
        "urigen",
        "check_aliasing",
        "engine",
        "_arena",
        "_ids",
        "_pinned",
    )

    def __init__(
        self,
        tree: TNode,
        options: DiffOptions = DEFAULT_OPTIONS,
        urigen: Optional[URIGen] = None,
        check_aliasing: bool = True,
        engine: Optional[str] = None,
    ) -> None:
        self.tree = tree
        self.options = options
        self.urigen = urigen if urigen is not None else tree.sigs.urigen
        self.check_aliasing = check_aliasing
        if engine is None:
            engine = options.engine
        if engine == "auto":
            engine = "flat"
        if engine not in ("flat", "object"):
            raise ValueError(
                f"unknown diff engine {engine!r}; expected 'flat', 'object', or 'auto'"
            )
        self.engine = engine
        self._ids: Optional[set[int]] = None
        self._arena = None
        if engine == "flat":
            from .arena import TreeArena

            # strict: rejects improper (node-sharing) source trees with
            # the same error as the object path's precheck
            self._arena = TreeArena.from_tree(tree, strict=True)
        elif check_aliasing:
            self._ids = _check_source(tree)
        # previous tree versions pinned until the next exact rebuild
        self._pinned: list[TNode] = []

    def diff(
        self, that: TNode, options: Optional[DiffOptions] = None
    ) -> tuple[EditScript, TNode]:
        """Diff the session tree against ``that`` and advance the session
        to the patched tree.  Returns ``(script, patched)`` like
        :func:`diff`."""
        opts = options if options is not None else self.options
        if self.engine == "flat":
            return self._diff_flat(that, opts)
        return self._diff_object(that, opts)

    def _diff_flat(
        self, that: TNode, opts: DiffOptions
    ) -> tuple[EditScript, TNode]:
        from .arena import ArenaError, TreeArena, arena_of
        from .flatdiff import diff_flat_prepared

        stats = DiffStats() if OBS.enabled else None
        target = arena_of(that)
        script, patched, buf = diff_flat_prepared(
            self._arena, target, opts, self.urigen, stats
        )
        validate_script(script, self.tree.sigs, opts.typecheck)
        rolled = True
        try:
            self._arena.apply_patch(script, buf.fresh)
        except ArenaError:
            # lost sync (diagnosable via verify_consistent); fall back to
            # a full rebuild of the patched tree — correctness never
            # depends on the roll-forward
            rolled = False
            self._arena = TreeArena.from_tree(patched, strict=True)
        if stats is not None:
            m = _metrics()
            m.counter("repro.session.diffs").inc()
            m.counter("repro.session.fresh_nodes").inc(len(buf.fresh))
            if rolled:
                m.counter("repro.session.arena_rolls").inc()
            else:
                m.counter("repro.session.arena_rebuilds").inc()
        self.tree = patched
        return script, patched

    def _diff_object(
        self, that: TNode, opts: DiffOptions
    ) -> tuple[EditScript, TNode]:
        check = self.check_aliasing
        stats = DiffStats() if OBS.enabled else None
        if check:
            dealiased = _dealias_if_needed(that, self._ids)
            if stats is not None and dealiased is not that:
                stats.dealias_rebuilds = 1
            that = dealiased
        script, patched, buf = _diff_prepared(
            self.tree, that, opts, self.urigen, stats
        )
        validate_script(script, self.tree.sigs, opts.typecheck)
        rebuilt_ids = False
        if check:
            if len(self._pinned) >= self.REBUILD_EVERY:
                self._ids = subtree_ids(patched)
                self._pinned.clear()
                rebuilt_ids = True
            else:
                self._pinned.append(self.tree)
                self._ids.update(map(id, buf.fresh))
        if stats is not None:
            m = _metrics()
            m.counter("repro.session.diffs").inc()
            # one fresh SubtreeRegistry generation per round
            m.counter("repro.session.generation_bumps").inc()
            m.counter("repro.session.fresh_nodes").inc(len(buf.fresh))
            if check:
                # id-cache "hit" = the cached id set caught genuine object
                # sharing with a recent version and forced a target rebuild
                if stats.dealias_rebuilds:
                    m.counter("repro.session.id_cache_hits").inc()
                else:
                    m.counter("repro.session.id_cache_misses").inc()
                if rebuilt_ids:
                    m.counter("repro.session.id_cache_rebuilds").inc()
                else:
                    m.counter("repro.session.id_cache_rolls").inc()
        self.tree = patched
        return script, patched
