"""Sorts, subtyping, and literal base types (Section 3.3).

The truechange type system assigns each constructor a signature

    ``(<x1:T1, ..., xm:Tm>, <y1:B1, ..., yn:Bn>) -> T``

where the ``Ti`` and ``T`` are *sorts* (types of subtrees) and the ``Bj``
are *base types* of literal values.  Sorts form a user-declared hierarchy
with :data:`ANY` at the top; the pre-defined root node has the special sort
:data:`ROOT_SORT` and a single ``Any``-typed slot.

Subtyping ``T <: U`` is the reflexive-transitive closure of the declared
sort edges, with ``T <: Any`` for every ``T``.  The hierarchy lives in the
:class:`~repro.core.signature.SignatureRegistry`, which exposes
``is_subtype``; this module only defines the type *values*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Type:
    """A subtree type (sort).  Instances are interned by name equality."""

    name: str

    def __str__(self) -> str:
        return self.name


#: Top of the sort hierarchy; every sort is a subtype of ``Any``.
ANY = Type("Any")

#: Sort of the pre-defined root node (the paper's ``Root``).
ROOT_SORT = Type("Root")


def sort(name: str) -> Type:
    """Create (or re-create) the sort with the given name."""
    return Type(name)


@dataclass(frozen=True)
class LitType:
    """A base type for literal values, with a membership predicate.

    ``⊢ l : B`` from the paper's T-Load/T-Update rules is decided by
    :meth:`check`.
    """

    name: str
    predicate: Callable[[Any], bool]

    def check(self, value: Any) -> bool:
        """Return True if ``value`` inhabits this base type."""
        return self.predicate(value)

    def __str__(self) -> str:
        return self.name

    # dataclass(frozen) would compare/hash the predicate; compare by name,
    # which is the identity that matters for signatures.
    def __eq__(self, other: object) -> bool:
        return isinstance(other, LitType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("LitType", self.name))


LIT_INT = LitType("Int", lambda v: isinstance(v, int) and not isinstance(v, bool))
LIT_FLOAT = LitType("Float", lambda v: isinstance(v, float))
LIT_STR = LitType("String", lambda v: isinstance(v, str))
LIT_BOOL = LitType("Bool", lambda v: isinstance(v, bool))
LIT_ANY = LitType("AnyLit", lambda v: True)


def lit_type(name: str, predicate: Callable[[Any], bool]) -> LitType:
    """Declare a custom literal base type."""
    return LitType(name, predicate)
