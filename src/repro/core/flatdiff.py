"""The truediff hot loop over :class:`~repro.core.arena.TreeArena` columns.

This module re-implements Steps 2–4 of the algorithm in
:mod:`repro.core.diff` on the struct-of-arrays layout: traversals walk
``first_kid``/``next_sib`` index chains, equivalence judgments compare
fingerprint ``bytes`` pulled from slot-indexed columns, and *all* per-diff
state (share pointers and assignments) lives in freshly allocated arrays
indexed by slot — no node object is touched until Step 4 materializes the
patched tree through the arena's object view.

The externalized state is what makes the flat path both fast and simple:

* no generation stamping — a fresh ``share_*``/``assigned_*`` array *is*
  a fresh generation, and "unstamped" is exactly ``share is None`` /
  ``assigned == NIL``;
* no aliasing hazard — a target tree that shares node objects with the
  source (or with itself) still occupies distinct slots, so the object
  path's dealias rebuild is unnecessary by construction;
* share tables are dicts keyed by fingerprint bytes holding int slots,
  so Step 2 is one pass over the fingerprint columns.

Every branch mirrors the object implementation exactly — same worklist
orders, same registration orders, same tie-breaking — so the emitted
scripts are byte-identical (the property suite in
``tests/test_arena_equivalence.py`` enforces this).  Step 3's
height-ordered heap becomes a counting bucket per height level: a kid's
height is strictly below its parent's, so processing buckets from the
tallest down visits exactly the batches the object path's priority heap
pops, in the same order, without the heap's log factor.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.observability import OBS, span as _span

from .arena import NIL, TreeArena
from .diff import (
    DEFAULT_OPTIONS,
    DiffOptions,
    DiffStats,
    EditBuffer,
    _align_positions,
    update_lits,
)
from .node import ROOT_LINK, ROOT_NODE
from .tree import TNode, lits_equal
from .uris import URIGen


class FlatShare:
    """One structural-equivalence class of available *source slots*.

    The flat counterpart of :class:`~repro.core.registry.SubtreeShare`:
    ``avail`` is an insertion-ordered set of slots (``take_any`` prefers
    the slot registered first, i.e. leftmost in the source), ``by_lit``
    additionally groups them by literal fingerprint for ``take_preferred``.
    Slots play the role URIs play in the object registry — for a proper
    source tree the two key spaces are in bijection, so insertion orders
    coincide and both paths pick the same candidates.
    """

    __slots__ = ("avail", "by_lit")

    def __init__(self) -> None:
        self.avail: dict[int, None] = {}
        self.by_lit: dict[bytes, dict[int, None]] = {}


def _share_for(shares: dict[bytes, FlatShare], h: bytes) -> FlatShare:
    sh = shares.get(h)
    if sh is None:
        sh = shares[h] = FlatShare()
    return sh


# ---------------------------------------------------------------------------
# Step 2: find reuse candidates (one pass over the fingerprint columns)
# ---------------------------------------------------------------------------


def _assign_shares_flat(
    S: TreeArena,
    D: TreeArena,
    root_s: int,
    root_d: int,
    shares: dict[bytes, FlatShare],
    share_s: list[Optional[FlatShare]],
    share_d: list[Optional[FlatShare]],
    assigned_s: list[int],
    assigned_d: list[int],
    stats: Optional[DiffStats] = None,
) -> None:
    """Mirror of :func:`repro.core.diff.assign_shares` over slot pairs."""
    sfp_s = S.sfp
    lfp_s = S.lfp
    tags_s = S.tags
    var_s = S.var
    fk_s = S.first_kid
    ns_s = S.next_sib
    sfp_d = D.sfp
    lfp_d = D.lfp
    tags_d = D.tags
    fk_d = D.first_kid
    ns_d = D.next_sib
    preemptive = 0

    # (source slot, target slot) position pairs; NIL marks an unmatched
    # side.  LIFO + reversed pushes = left-to-right DFS, as in the object
    # path — registration order decides which candidate Step 3 acquires.
    pairs: list[tuple[int, int]] = [(root_s, root_d)]
    while pairs:
        i, j = pairs.pop()
        if j == NIL:
            # unmatched source element: whole subtree becomes available
            stack = [i]
            while stack:
                t = stack.pop()
                sh = share_s[t]
                if sh is None:
                    sh = share_s[t] = _share_for(shares, sfp_s[t])
                if t not in sh.avail:
                    sh.avail[t] = None
                    sh.by_lit.setdefault(lfp_s[t], {})[t] = None
                kids = []
                k = fk_s[t]
                while k != NIL:
                    kids.append(k)
                    k = ns_s[k]
                stack.extend(reversed(kids))
            continue
        if i == NIL:
            # unmatched target element: subtree merely gets shares
            stack = [j]
            while stack:
                t = stack.pop()
                if share_d[t] is None:
                    share_d[t] = _share_for(shares, sfp_d[t])
                kids = []
                k = fk_d[t]
                while k != NIL:
                    kids.append(k)
                    k = ns_d[k]
                stack.extend(reversed(kids))
            continue
        sh_a = share_s[i]
        if sh_a is None:
            sh_a = share_s[i] = _share_for(shares, sfp_s[i])
        sh_b = share_d[j]
        if sh_b is None:
            sh_b = share_d[j] = _share_for(shares, sfp_d[j])
        if sh_a is sh_b:
            # structurally equivalent trees at matching positions:
            # preemptive assignment, stop descending
            assigned_s[i] = j
            assigned_d[j] = i
            preemptive += 1
        elif tags_s[i] == tags_d[j]:
            # descend simultaneously; this node itself may still be moved
            if i not in sh_a.avail:
                sh_a.avail[i] = None
                sh_a.by_lit.setdefault(lfp_s[i], {})[i] = None
            ka = []
            k = fk_s[i]
            while k != NIL:
                ka.append(k)
                k = ns_s[k]
            kb = []
            k = fk_d[j]
            while k != NIL:
                kb.append(k)
                k = ns_d[k]
            if var_s[i]:
                # list kids align by content, not position (same
                # LIS-anchored alignment as the object path, over
                # fingerprint keys instead of cached identity hashes)
                keys_a = [(sfp_s[k], lfp_s[k]) for k in ka]
                keys_b = [(sfp_d[k], lfp_d[k]) for k in kb]
                aligned = _align_positions(keys_a, keys_b)
                for x in range(len(aligned) - 1, -1, -1):
                    ai, bj = aligned[x]
                    pairs.append(
                        (ka[ai] if ai >= 0 else NIL, kb[bj] if bj >= 0 else NIL)
                    )
            else:
                for x in range(len(ka) - 1, -1, -1):
                    pairs.append((ka[x], kb[x]))
        else:
            # unrelated constructors: all source subtrees become
            # available, all target subtrees merely get shares
            stack = [i]
            while stack:
                t = stack.pop()
                sh = share_s[t]
                if sh is None:
                    sh = share_s[t] = _share_for(shares, sfp_s[t])
                if t not in sh.avail:
                    sh.avail[t] = None
                    sh.by_lit.setdefault(lfp_s[t], {})[t] = None
                kids = []
                k = fk_s[t]
                while k != NIL:
                    kids.append(k)
                    k = ns_s[k]
                stack.extend(reversed(kids))
            stack = [j]
            while stack:
                t = stack.pop()
                if share_d[t] is None:
                    share_d[t] = _share_for(shares, sfp_d[t])
                kids = []
                k = fk_d[t]
                while k != NIL:
                    kids.append(k)
                    k = ns_d[k]
                stack.extend(reversed(kids))
    if stats is not None:
        stats.preemptive_pairs += preemptive


# ---------------------------------------------------------------------------
# Step 3: select reuse candidates (counting buckets over the height column)
# ---------------------------------------------------------------------------


def _subtree_slots(arena: TreeArena, root: int) -> list[int]:
    """Pre-order slots of ``root``'s subtree (kids left to right)."""
    fk = arena.first_kid
    ns = arena.next_sib
    out = []
    stack = [root]
    while stack:
        t = stack.pop()
        out.append(t)
        kids = []
        k = fk[t]
        while k != NIL:
            kids.append(k)
            k = ns[k]
        stack.extend(reversed(kids))
    return out


def _take_tree_flat(
    S: TreeArena,
    D: TreeArena,
    src: int,
    that: int,
    shares: dict[bytes, FlatShare],
    share_s: list[Optional[FlatShare]],
    share_d: list[Optional[FlatShare]],
    assigned_s: list[int],
    assigned_d: list[int],
) -> None:
    """Mirror of :func:`repro.core.diff.take_tree`.

    The object path guards every read with a generation stamp because it
    walks whole subtrees that may contain nodes Step 2 never stamped
    (below preemptive pairs).  Here "never stamped" is simply a ``None``
    share in this diff's fresh array.
    """
    sfp_s = S.sfp
    lfp_s = S.lfp
    sfp_d = D.sfp
    # Undo preemptive pairs inside `that`: their source partners are
    # freed and become available again for other targets.
    for t2 in _subtree_slots(D, that)[1:]:
        s2 = assigned_d[t2]
        if s2 != NIL:
            assigned_d[t2] = NIL
            assigned_s[s2] = NIL
            for s in _subtree_slots(S, s2):
                sh = share_s[s]
                if sh is None:
                    sh = share_s[s] = _share_for(shares, sfp_s[s])
                if s not in sh.avail:
                    sh.avail[s] = None
                    sh.by_lit.setdefault(lfp_s[s], {})[s] = None
    # Consume src: deregister its whole subtree; preemptive pairs whose
    # source lies inside src are undone, making the target partner
    # required again (it will be reached by the Step-3 buckets).
    for s in _subtree_slots(S, src):
        sh = share_s[s]
        if sh is None:
            continue
        if s in sh.avail:
            del sh.avail[s]
            bucket = sh.by_lit.get(lfp_s[s])
            if bucket is not None:
                bucket.pop(s, None)
                if not bucket:
                    del sh.by_lit[lfp_s[s]]
        tp = assigned_s[s]
        if tp != NIL:
            assigned_s[s] = NIL
            assigned_d[tp] = NIL
            for t in _subtree_slots(D, tp):
                if share_d[t] is None:
                    share_d[t] = _share_for(shares, sfp_d[t])
    assigned_s[src] = that
    assigned_d[that] = src


def _assign_subtrees_flat(
    S: TreeArena,
    D: TreeArena,
    root_d: int,
    shares: dict[bytes, FlatShare],
    share_s: list[Optional[FlatShare]],
    share_d: list[Optional[FlatShare]],
    assigned_s: list[int],
    assigned_d: list[int],
    options: DiffOptions = DEFAULT_OPTIONS,
    stats: Optional[DiffStats] = None,
) -> None:
    """Mirror of :func:`repro.core.diff.assign_subtrees`.

    Highest-first traversal without a heap: one bucket per height level,
    processed tallest-down.  Kids are strictly lower than their parent,
    so every push lands in a bucket that has not been processed yet, and
    each bucket — in push order — is exactly the batch of equal priority
    the object path's heap pops at once.
    """
    height_d = D.height
    fk_d = D.first_kid
    ns_d = D.next_sib
    nodes_s = S.nodes
    nodes_d = D.nodes
    prefer = options.prefer_literal_matches
    lfp_d = D.lfp
    pushes = 0

    def handle_batch(nexts: list[int], push) -> None:
        nonlocal pushes
        # skip subtrees already settled by preemptive assignment
        todo = [t for t in nexts if assigned_d[t] == NIL]
        unassigned: list[int] = []
        if prefer:
            for t in todo:
                sh = share_d[t]
                bucket = sh.by_lit.get(lfp_d[t])
                src = next(iter(bucket)) if bucket else None
                if src is not None:
                    if stats is not None:
                        stats.note_acquisition(nodes_s[src], nodes_d[t], True)
                    _take_tree_flat(
                        S, D, src, t,
                        shares, share_s, share_d, assigned_s, assigned_d,
                    )
                else:
                    unassigned.append(t)
        else:
            unassigned = todo
        for t in unassigned:
            avail = share_d[t].avail
            src = next(iter(avail)) if avail else None
            if src is not None:
                if stats is not None:
                    stats.note_acquisition(nodes_s[src], nodes_d[t], False)
                _take_tree_flat(
                    S, D, src, t,
                    shares, share_s, share_d, assigned_s, assigned_d,
                )
            else:
                k = fk_d[t]
                while k != NIL:
                    push(k)
                    pushes += 1
                    k = ns_d[k]

    if options.height_first:
        top = height_d[root_d]
        buckets: list[list[int]] = [[] for _ in range(top + 1)]
        buckets[top].append(root_d)
        pushes = 1
        for h in range(top, 0, -1):
            batch = buckets[h]
            if batch:
                handle_batch(batch, lambda k: buckets[height_d[k]].append(k))
    else:
        # FIFO: unique priorities make every heap batch a single element
        fifo: deque[int] = deque((root_d,))
        pushes = 1
        while fifo:
            handle_batch([fifo.popleft()], fifo.append)

    if stats is not None:
        stats.heap_pushes += pushes


# ---------------------------------------------------------------------------
# Step 4: compute edit script (index walks, object materialization)
# ---------------------------------------------------------------------------


def _unload_unassigned_flat(
    S: TreeArena, root: int, buf: EditBuffer, assigned_s: list[int]
) -> None:
    """Mirror of :func:`repro.core.diff.unload_unassigned`."""
    nodes = S.nodes
    fk = S.first_kid
    ns = S.next_sib
    stack = [root]
    while stack:
        i = stack.pop()
        if assigned_s[i] != NIL:
            continue  # remains a detached root; reattached elsewhere
        buf.unload(nodes[i])
        kids = []
        k = fk[i]
        while k != NIL:
            kids.append(k)
            k = ns[k]
        stack.extend(reversed(kids))


def _load_unassigned_flat(
    S: TreeArena,
    D: TreeArena,
    root: int,
    buf: EditBuffer,
    urigen: URIGen,
    assigned_d: list[int],
) -> TNode:
    """Mirror of :func:`repro.core.diff.load_unassigned`."""
    fresh = urigen.fresh
    nodes_s = S.nodes
    nodes_d = D.nodes
    fk = D.first_kid
    ns = D.next_sib
    stack: list[tuple[int, bool]] = [(root, False)]
    results: list[TNode] = []
    while stack:
        i, post = stack.pop()
        if not post:
            src = assigned_d[i]
            if src != NIL:
                results.append(update_lits(nodes_s[src], nodes_d[i], buf))
                continue
            stack.append((i, True))
            kids = []
            k = fk[i]
            while k != NIL:
                kids.append(k)
                k = ns[k]
            stack.extend((k, False) for k in reversed(kids))
        else:
            b = nodes_d[i]
            cnt = len(b.kids)
            if cnt:
                kids = results[-cnt:]
                del results[-cnt:]
            else:
                kids = []
            node = TNode(b.sigs, b.sig, kids, b.lits, fresh(), validate=False)
            buf.load(node)
            results.append(node)
    return results[0]


def _compute_edits_flat(
    S: TreeArena,
    D: TreeArena,
    root_s: int,
    root_d: int,
    buf: EditBuffer,
    urigen: URIGen,
    assigned_s: list[int],
    assigned_d: list[int],
) -> TNode:
    """Mirror of :func:`repro.core.diff.compute_edits`: the simultaneous
    traversal walks slot chains; node materialization (spine rebuilds and
    loads) goes through the arenas' object views."""
    nodes_s = S.nodes
    nodes_d = D.nodes
    tags_s = S.tags
    tags_d = D.tags
    var_s = S.var
    fk_s = S.first_kid
    ns_s = S.next_sib
    fk_d = D.first_kid
    ns_d = D.next_sib
    # pre frames: (False, i, j, parent node, link); post: (True, i, j, -, -)
    stack = [(False, root_s, root_d, ROOT_NODE, ROOT_LINK)]
    results: list[TNode] = []
    while stack:
        post, i, j, par, lnk = stack.pop()
        a = nodes_s[i]
        b = nodes_d[j]
        if post:
            cnt = len(a.kids)
            if cnt:
                kids = results[-cnt:]
                del results[-cnt:]
            else:
                kids = []
            if not lits_equal(a.lits, b.lits):
                buf.update(a, b)
            elif all(x is y for x, y in zip(kids, a.kids)):
                results.append(a)
                continue
            node = TNode(a.sigs, a.sig, kids, b.lits, a.uri, validate=False)
            buf.fresh.append(node)
            results.append(node)
            continue
        a_assigned = assigned_s[i]
        if a_assigned == j:
            # reuse this subtree in place, only updating literals
            results.append(update_lits(a, b, buf))
            continue
        if (
            a_assigned == NIL
            and assigned_d[j] == NIL
            and tags_s[i] == tags_d[j]
            and not (var_s[i] and len(a.kids) != len(b.kids))
        ):
            # keep `a` in place and descend into the kids
            stack.append((True, i, j, None, None))
            a_node = a.node
            items = a.kid_items
            ka = []
            k = fk_s[i]
            while k != NIL:
                ka.append(k)
                k = ns_s[k]
            kb = []
            k = fk_d[j]
            while k != NIL:
                kb.append(k)
                k = ns_d[k]
            for x in range(len(items) - 1, -1, -1):
                stack.append((False, ka[x], kb[x], a_node, items[x][0]))
            continue
        # replace subtree `a` by subtree `b`
        buf.detach(a, lnk, par)
        _unload_unassigned_flat(S, i, buf, assigned_s)
        t = _load_unassigned_flat(S, D, j, buf, urigen, assigned_d)
        buf.attach(t, lnk, par)
        results.append(t)
    return results[0]


# ---------------------------------------------------------------------------
# The flat compareTo
# ---------------------------------------------------------------------------


def diff_flat_prepared(
    S: TreeArena,
    D: TreeArena,
    options: DiffOptions,
    urigen: URIGen,
    stats: Optional[DiffStats] = None,
) -> tuple["EditScript", TNode, EditBuffer]:
    """Steps 2–4 over two arenas; same contract (and same spans) as
    :func:`repro.core.diff._diff_prepared`.  No aliasing precondition:
    per-diff state is slot-indexed, so object sharing in the target is
    harmless, and duplicate slots simply never win over each other."""
    with _span("repro.diff", {"engine": "flat"}) as root:
        root_s = S.first_kid[0]
        root_d = D.first_kid[0]
        shares: dict[bytes, FlatShare] = {}
        share_s: list[Optional[FlatShare]] = [None] * len(S.parent)
        share_d: list[Optional[FlatShare]] = [None] * len(D.parent)
        assigned_s = [NIL] * len(S.parent)
        assigned_d = [NIL] * len(D.parent)
        with _span("repro.diff.assign_shares"):
            _assign_shares_flat(
                S, D, root_s, root_d,
                shares, share_s, share_d, assigned_s, assigned_d, stats,
            )
        if stats is not None:
            stats.shares = len(shares)
        with _span("repro.diff.assign_subtrees"):
            _assign_subtrees_flat(
                S, D, root_d,
                shares, share_s, share_d, assigned_s, assigned_d, options, stats,
            )
        buf = EditBuffer()
        with _span("repro.diff.compute_edits"):
            patched = _compute_edits_flat(
                S, D, root_s, root_d, buf, urigen, assigned_s, assigned_d
            )
        if stats is not None:
            stats.count_edits(buf)
            if OBS.enabled:
                stats.publish(S.size[root_s], D.size[root_d])
        script = buf.to_script(coalesce=options.coalesce)
        root.set_attrs(
            src_nodes=S.size[root_s],
            dst_nodes=D.size[root_d],
            edits=len(script),
            shares=len(shares),
        )
    return script, patched, buf
