"""Random well-typed tree generation for any grammar.

Given a :class:`~repro.core.signature.SignatureRegistry` and a target
sort, :func:`random_tree` draws a well-typed tree — the workhorse behind
the library's property-based tests, and reusable for downstream grammars
(fuzzing an adapter, stress-testing an analysis).

Termination is guaranteed by precomputing the *minimal height* of each
sort (the height of the smallest finite term): beyond the depth budget
only minimal constructors are drawn.  Sorts with no finite terms are
reported as errors instead of looping.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from .node import Tag
from .signature import Signature, SignatureRegistry
from .tree import TNode
from .types import LitType, Type
from .uris import URIGen


class GenerationError(Exception):
    """The grammar cannot generate a finite tree of the requested sort."""


_DEFAULT_STRINGS = ["a", "b", "c", "x", "y", "foo", "bar"]


def default_literal_providers() -> dict[str, Callable[[random.Random], Any]]:
    """Value generators per literal base type name (override per call)."""
    return {
        "Int": lambda rng: rng.randint(0, 99),
        "Float": lambda rng: round(rng.uniform(-10, 10), 3),
        "String": lambda rng: rng.choice(_DEFAULT_STRINGS),
        "Bool": lambda rng: rng.random() < 0.5,
        "AnyLit": lambda rng: rng.choice([0, 1, "s", None, True]),
        "NullableLit": lambda rng: rng.choice([None, "n", 2]),
    }


class TreeGenerator:
    """Reusable generator with precomputed minimal heights."""

    def __init__(
        self,
        sigs: SignatureRegistry,
        literal_providers: Optional[dict[str, Callable[[random.Random], Any]]] = None,
        exclude_tags: frozenset[Tag] = frozenset(),
    ) -> None:
        self.sigs = sigs
        self.providers = default_literal_providers()
        if literal_providers:
            self.providers.update(literal_providers)
        self.exclude = exclude_tags
        self._min_height: dict[Tag, float] = {}
        self._compute_min_heights()

    def _candidates(self, sort: Type) -> list[Signature]:
        return [
            sig
            for sig in (self.sigs[t] for t in self.sigs.tags)
            if sig.tag not in self.exclude
            and sig.tag != "<Root>"
            and self.sigs.is_subtype(sig.result, sort)
        ]

    def _compute_min_heights(self) -> None:
        INF = float("inf")
        heights: dict[Tag, float] = {t: INF for t in self.sigs.tags}

        def sort_min(sort: Type) -> float:
            best = INF
            for sig in self._candidates(sort):
                if heights[sig.tag] < best:
                    best = heights[sig.tag]
            return best

        changed = True
        while changed:
            changed = False
            for tag in self.sigs.tags:
                sig = self.sigs[tag]
                if sig.variadic is not None:
                    h = 1.0  # an empty list is always possible
                else:
                    h = 1.0
                    for _, kid_sort in sig.kids:
                        h = max(h, 1 + sort_min(kid_sort))
                if h < heights[tag]:
                    heights[tag] = h
                    changed = True
        self._min_height = heights

    def min_height(self, sort: Type) -> float:
        """The minimal height of a finite tree of the given sort."""
        best = min(
            (self._min_height[sig.tag] for sig in self._candidates(sort)),
            default=float("inf"),
        )
        return best

    def random_tree(
        self,
        sort: Type,
        rng: random.Random,
        max_depth: int = 6,
        urigen: Optional[URIGen] = None,
        max_list_len: int = 3,
    ) -> TNode:
        """Draw a well-typed tree of the given sort."""
        if urigen is None:
            urigen = self.sigs.urigen
        if self.min_height(sort) == float("inf"):
            raise GenerationError(f"sort {sort} has no finite terms")
        return self._gen(sort, rng, max_depth, urigen, max_list_len)

    def _gen(
        self,
        sort: Type,
        rng: random.Random,
        budget: int,
        urigen: URIGen,
        max_list_len: int,
    ) -> TNode:
        options = [
            sig for sig in self._candidates(sort) if self._min_height[sig.tag] <= budget
        ]
        if not options:
            # fall back to the overall smallest constructors
            floor = self.min_height(sort)
            options = [
                sig for sig in self._candidates(sort) if self._min_height[sig.tag] == floor
            ]
        # bias towards compound constructors while the budget allows, so
        # generated trees are not overwhelmingly leaves
        if budget > 1 and rng.random() < 0.7:
            compound = [s for s in options if s.kids or s.variadic is not None]
            if compound:
                options = compound
        sig = rng.choice(options)
        kids: list[TNode] = []
        if sig.variadic is not None:
            elem_min = self.min_height(sig.variadic)
            if elem_min == float("inf"):
                n = 0
            else:
                cap = max_list_len if budget - 1 >= elem_min else 0
                # bias towards non-empty lists while the budget allows
                n = rng.randint(1, cap) if cap and rng.random() < 0.8 else rng.randint(0, cap)
            kids = [
                self._gen(sig.variadic, rng, budget - 1, urigen, max_list_len)
                for _ in range(n)
            ]
        else:
            kids = [
                self._gen(kid_sort, rng, budget - 1, urigen, max_list_len)
                for _, kid_sort in sig.kids
            ]
        lits = [self._literal(base, rng) for _, base in sig.lits]
        return TNode(self.sigs, sig, kids, lits, urigen.fresh())

    def _literal(self, base: LitType, rng: random.Random) -> Any:
        provider = self.providers.get(base.name)
        if provider is None:
            raise GenerationError(
                f"no literal provider for base type {base.name!r}; pass one via "
                "literal_providers"
            )
        for _ in range(100):
            value = provider(rng)
            if base.check(value):
                return value
        raise GenerationError(f"provider for {base.name!r} never satisfied the type")


def random_tree(
    sigs: SignatureRegistry,
    sort: Type,
    rng: random.Random,
    max_depth: int = 6,
    **kwargs: Any,
) -> TNode:
    """One-shot convenience wrapper around :class:`TreeGenerator`."""
    return TreeGenerator(sigs).random_tree(sort, rng, max_depth, **kwargs)
