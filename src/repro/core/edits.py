"""truechange edit operations and edit scripts (Figure 1).

An edit script is a sequence of five primitive edit operations:

* :class:`Detach` — disconnect a child from its parent, leaving an empty
  slot in the parent and a new detached root.
* :class:`Attach` — connect a detached root into an empty slot.
* :class:`Load` — create a new node (fresh URI) from detached-root kids
  and literal values; the new node becomes a detached root.
* :class:`Unload` — delete a detached root, turning its kids into
  detached roots.
* :class:`Update` — replace a node's literal values in place.

For conciseness accounting (Section 6) truediff merges a ``Load`` directly
followed by an ``Attach`` of the same node into a compound :class:`Insert`,
and a ``Detach`` directly followed by an ``Unload`` of the same node into a
compound :class:`Remove`.  These correspond to Gumtree's ``Ins`` and ``Del``
edits.  Compound edits count as *one* edit; :meth:`EditScript.primitives`
expands them back into the two primitive operations for type checking and
patching.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Any, Callable, Iterable, Iterator, Union

from .node import Link, Node
from .uris import URI

# kid bindings of a Load/Unload: link -> kid URI, in signature order
Kids = tuple[tuple[Link, URI], ...]
# literal bindings: link -> literal value, in signature order
Lits = tuple[tuple[Link, Any], ...]


def _fmt_kids(kids: Kids) -> str:
    return ", ".join(f"{l}->{u}" for l, u in kids)


def _fmt_lits(lits: Lits) -> str:
    return ", ".join(f"{l}={v!r}" for l, v in lits)


@dataclass(frozen=True)
class Detach:
    """``Detach(node, link, parent)``: unlink ``node`` from ``parent.link``."""

    node: Node
    link: Link
    parent: Node

    def __str__(self) -> str:
        return f"detach({self.node}, {self.link!r}, {self.parent})"


@dataclass(frozen=True)
class Attach:
    """``Attach(node, link, parent)``: link root ``node`` into ``parent.link``."""

    node: Node
    link: Link
    parent: Node

    def __str__(self) -> str:
        return f"attach({self.node}, {self.link!r}, {self.parent})"


@dataclass(frozen=True)
class Load:
    """``Load(node, kids, lits)``: create ``node`` with the given contents."""

    node: Node
    kids: Kids
    lits: Lits

    def __str__(self) -> str:
        return f"load({self.node}, <{_fmt_kids(self.kids)}>, <{_fmt_lits(self.lits)}>)"


@dataclass(frozen=True)
class Unload:
    """``Unload(node, kids, lits)``: delete root ``node``, freeing its kids."""

    node: Node
    kids: Kids
    lits: Lits

    def __str__(self) -> str:
        return f"unload({self.node}, <{_fmt_kids(self.kids)}>, <{_fmt_lits(self.lits)}>)"


@dataclass(frozen=True)
class Update:
    """``Update(node, old, new)``: replace the literals of ``node``."""

    node: Node
    old_lits: Lits
    new_lits: Lits

    def __str__(self) -> str:
        return f"update({self.node}, <{_fmt_lits(self.old_lits)}>, <{_fmt_lits(self.new_lits)}>)"


@dataclass(frozen=True)
class Insert:
    """Compound ``Load`` + ``Attach`` of the same node (counts as one edit)."""

    node: Node
    kids: Kids
    lits: Lits
    link: Link
    parent: Node

    def expand(self) -> tuple[Load, Attach]:
        return (
            Load(self.node, self.kids, self.lits),
            Attach(self.node, self.link, self.parent),
        )

    def __str__(self) -> str:
        return (
            f"insert({self.node}, <{_fmt_kids(self.kids)}>, <{_fmt_lits(self.lits)}>, "
            f"{self.link!r}, {self.parent})"
        )


@dataclass(frozen=True)
class Remove:
    """Compound ``Detach`` + ``Unload`` of the same node (counts as one edit)."""

    node: Node
    link: Link
    parent: Node
    kids: Kids
    lits: Lits

    def expand(self) -> tuple[Detach, Unload]:
        return (
            Detach(self.node, self.link, self.parent),
            Unload(self.node, self.kids, self.lits),
        )

    def __str__(self) -> str:
        return (
            f"remove({self.node}, {self.link!r}, {self.parent}, "
            f"<{_fmt_kids(self.kids)}>, <{_fmt_lits(self.lits)}>)"
        )


PrimitiveEdit = Union[Detach, Attach, Load, Unload, Update]
Edit = Union[PrimitiveEdit, Insert, Remove]

NEGATIVE_EDITS = (Detach, Unload, Remove)
POSITIVE_EDITS = (Attach, Load, Insert)


def _rebuild_edit(
    edit: Edit,
    node_fn: Callable[[Node], Node],
    kids_fn: Callable[[Kids], Kids],
) -> Edit:
    """Rebuild an edit with its node references and kid bindings mapped."""
    if isinstance(edit, Detach):
        return Detach(node_fn(edit.node), edit.link, node_fn(edit.parent))
    if isinstance(edit, Attach):
        return Attach(node_fn(edit.node), edit.link, node_fn(edit.parent))
    if isinstance(edit, Load):
        return Load(node_fn(edit.node), kids_fn(edit.kids), edit.lits)
    if isinstance(edit, Unload):
        return Unload(node_fn(edit.node), kids_fn(edit.kids), edit.lits)
    if isinstance(edit, Update):
        return Update(node_fn(edit.node), edit.old_lits, edit.new_lits)
    if isinstance(edit, Insert):
        return Insert(
            node_fn(edit.node), kids_fn(edit.kids), edit.lits, edit.link, node_fn(edit.parent)
        )
    if isinstance(edit, Remove):
        return Remove(
            node_fn(edit.node), edit.link, node_fn(edit.parent), kids_fn(edit.kids), edit.lits
        )
    raise TypeError(f"unknown edit kind {type(edit).__name__}")


def map_edit_uris(edit: Edit, fn: Callable[[URI], URI]) -> Edit:
    """Rebuild ``edit`` with every URI it mentions passed through ``fn`` —
    node and parent references as well as Load/Unload kid bindings.
    Literal values and links are untouched.  Used by script merging (URI
    renaming) and by the fault-injection corruptor (URI swapping)."""
    return _rebuild_edit(
        edit,
        lambda n: Node(n.tag, fn(n.uri)),
        lambda ks: tuple((l, fn(u)) for l, u in ks),
    )


def map_edit_nodes(edit: Edit, fn: Callable[[Node], Node]) -> Edit:
    """Rebuild ``edit`` with every node reference (node and parent) passed
    through ``fn``; kid bindings are left alone."""
    return _rebuild_edit(edit, fn, lambda ks: ks)


def edit_uris(edit: Edit) -> list[URI]:
    """Every URI ``edit`` mentions: its node, its parent (for attach-like
    edits), and its kid bindings (for load/unload-like edits), in that
    order, duplicates preserved.  Shared by the fault-injection corruptor
    (URI swapping) and the truelint dataflow rules (use/def scanning)."""
    uris = [edit.node.uri]
    if isinstance(edit, (Detach, Attach)):
        uris.append(edit.parent.uri)
    elif isinstance(edit, (Load, Unload)):
        uris.extend(u for _, u in edit.kids)
    elif isinstance(edit, Insert):
        uris.append(edit.parent.uri)
        uris.extend(u for _, u in edit.kids)
    elif isinstance(edit, Remove):
        uris.append(edit.parent.uri)
        uris.extend(u for _, u in edit.kids)
    return uris


def edit_slots(edit: Edit) -> list[tuple[URI, Link]]:
    """The parent slots ``(parent_uri, link)`` that ``edit`` detaches or
    fills (empty for Load/Unload/Update)."""
    if isinstance(edit, (Detach, Attach, Insert, Remove)):
        return [(edit.parent.uri, edit.link)]
    return []


class EditScript:
    """An immutable sequence of edits.

    ``len(script)`` counts compound edits as one, matching the paper's
    conciseness metric.  Iteration yields the edits as stored; use
    :meth:`primitives` for the fully expanded primitive sequence.
    """

    __slots__ = ("edits",)

    def __init__(self, edits: Iterable[Edit] = ()) -> None:
        self.edits: tuple[Edit, ...] = tuple(edits)

    def __len__(self) -> int:
        return len(self.edits)

    def __iter__(self) -> Iterator[Edit]:
        return iter(self.edits)

    def __getitem__(self, i: int) -> Edit:
        return self.edits[i]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EditScript) and other.edits == self.edits

    def __hash__(self) -> int:
        return hash(self.edits)

    def __add__(self, other: "EditScript") -> "EditScript":
        return EditScript(self.edits + other.edits)

    @classmethod
    def from_buffers(
        cls,
        negatives: Iterable[Edit],
        positives: Iterable[Edit],
        coalesce: bool = True,
    ) -> "EditScript":
        """Build a script from an edit buffer's negative and positive edit
        lists without concatenating them into an intermediate list.

        Coalescing the chained sequence is equivalent to coalescing each
        buffer: the merge pairs (Load+Attach, Detach+Unload) never straddle
        the negative/positive boundary.
        """
        script = cls(chain(negatives, positives))
        return script.coalesced() if coalesce else script

    def primitives(self) -> Iterator[PrimitiveEdit]:
        """Yield the primitive edits, expanding compounds."""
        for e in self.edits:
            if isinstance(e, (Insert, Remove)):
                yield from e.expand()
            else:
                yield e

    @property
    def is_empty(self) -> bool:
        return not self.edits

    def coalesced(self) -> "EditScript":
        """Merge adjacent Load/Attach and Detach/Unload pairs of the same
        node into compound edits (the paper's conciseness counting)."""
        out: list[Edit] = []
        i = 0
        edits = self.edits
        while i < len(edits):
            e = edits[i]
            nxt = edits[i + 1] if i + 1 < len(edits) else None
            if (
                isinstance(e, Load)
                and isinstance(nxt, Attach)
                and nxt.node == e.node
            ):
                out.append(Insert(e.node, e.kids, e.lits, nxt.link, nxt.parent))
                i += 2
            elif (
                isinstance(e, Detach)
                and isinstance(nxt, Unload)
                and nxt.node == e.node
            ):
                out.append(Remove(e.node, e.link, e.parent, nxt.kids, nxt.lits))
                i += 2
            else:
                out.append(e)
                i += 1
        return EditScript(out)

    def expanded(self) -> "EditScript":
        """The fully primitive version of this script."""
        return EditScript(self.primitives())

    def __str__(self) -> str:
        return "[\n  " + ",\n  ".join(str(e) for e in self.edits) + "\n]"

    def __repr__(self) -> str:
        return f"EditScript({list(self.edits)!r})"
