"""Legacy setup entry point.

The offline evaluation environment lacks the ``wheel`` package, so PEP
517/660 builds (which ``pip install -e .`` would otherwise use) fail with
``invalid command 'bdist_wheel'``.  Keeping a classic ``setup.py`` (and no
``[build-system]`` table in pyproject.toml) makes ``pip install -e .`` take
the legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "truediff/truechange: concise, type-safe, and efficient structural "
        "diffing (PLDI 2021 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
