#!/usr/bin/env python3
"""Structural version control over JSON documents.

Structural patches are useful beyond ASTs (the paper's introduction lists
version control systems and databases).  This example keeps a history of
JSON document revisions as truechange edit scripts: each revision stores
only the concise script, and any revision can be reconstructed by
replaying scripts from the initial document — the standard semantics'
``⟦∆1, ..., ∆n⟧`` composition (Section 3.2).

Run:  python examples/version_control.py
"""

import json

from repro import EditScript, diff, is_well_typed, tnode_to_mtree
from repro.adapters import json_to_tnode
from repro.adapters.jsonlike import json_grammar

REVISIONS = [
    {
        "name": "repro",
        "version": "0.1.0",
        "dependencies": {"pytest": "^7", "hypothesis": "^6"},
        "scripts": {"test": "pytest"},
    },
    {
        "name": "repro",
        "version": "0.2.0",
        "dependencies": {"pytest": "^7", "hypothesis": "^6"},
        "scripts": {"test": "pytest", "bench": "pytest benchmarks --benchmark-only"},
    },
    {
        "name": "repro",
        "version": "1.0.0",
        "dependencies": {"pytest": "^8", "hypothesis": "^6", "numpy": "^1.26"},
        "scripts": {"bench": "pytest benchmarks --benchmark-only", "test": "pytest"},
    },
]


def main() -> None:
    grammar = json_grammar()
    base = json_to_tnode(REVISIONS[0])
    history: list[EditScript] = []

    current = base
    for i, doc in enumerate(REVISIONS[1:], start=1):
        target = json_to_tnode(doc)
        script, patched = diff(current, target)
        assert is_well_typed(grammar.grammar.sigs, script)
        history.append(script)
        print(f"revision {i}: {len(script)} edits")
        for edit in script:
            print(f"   {edit}")
        current = patched

    # replay the whole history against the base document
    mtree = tnode_to_mtree(base)
    for script in history:
        mtree.patch(script)
    final = tnode_to_mtree(json_to_tnode(REVISIONS[-1]))
    assert mtree.structure_equals(final)
    print("\nreplaying all scripts reproduces the final revision \N{CHECK MARK}")

    store = sum(len(s) for s in history)
    naive = sum(len(json.dumps(d)) for d in REVISIONS[1:])
    print(f"stored {store} edits total (vs {naive} chars of full snapshots)")


if __name__ == "__main__":
    main()
