#!/usr/bin/env python3
"""Diff two Python source files structurally.

The paper's evaluation scenario: real-world Python documents.  The
CPython ``ast`` binding derives a typed grammar from the Python 3.11
abstract grammar (ASDL) and wraps parse trees as diffable trees, the way
the artifact's ANTLR/treesitter wrappers do for Java.

Usage:
    python examples/python_file_diff.py [before.py after.py]

Without arguments, a built-in before/after pair is used.
"""

import sys

from repro import diff, is_well_typed, tnode_to_mtree
from repro.adapters import ast_node_count, parse_python, unparse_python

BEFORE = '''
import os

def load_config(path):
    with open(path) as fh:
        data = fh.read()
    return parse(data)

def parse(text):
    result = {}
    for line in text.splitlines():
        if "=" in line:
            key, value = line.split("=", 1)
            result[key.strip()] = value.strip()
    return result
'''

AFTER = '''
import os

def load_config(path, encoding="utf8"):
    with open(path, encoding=encoding) as fh:
        data = fh.read()
    return parse(data)

def parse(text):
    result = {}
    for line in text.splitlines():
        line = line.split("#", 1)[0]
        if "=" in line:
            key, value = line.split("=", 1)
            result[key.strip()] = value.strip()
    return result
'''


def main() -> None:
    if len(sys.argv) == 3:
        with open(sys.argv[1]) as fh:
            before = fh.read()
        with open(sys.argv[2]) as fh:
            after = fh.read()
    else:
        before, after = BEFORE, AFTER

    src = parse_python(before)
    dst = parse_python(after)
    print(f"source: {ast_node_count(src)} AST nodes; target: {ast_node_count(dst)}")

    script, patched = diff(src, dst)
    print(f"\ntruediff edit script: {len(script)} edits")
    for edit in script:
        print(f"  {edit}")

    assert is_well_typed(src.sigs, script), "scripts are always well-typed"
    mtree = tnode_to_mtree(src)
    mtree.patch(script)
    assert mtree.structure_equals(tnode_to_mtree(dst))
    print("\nscript is well-typed and patches source to target \N{CHECK MARK}")

    # The patched tree is a real Python AST again:
    print("\nregenerated target source:")
    print(unparse_python(patched))


if __name__ == "__main__":
    main()
