#!/usr/bin/env python3
"""Quickstart: declare a diffable ADT, diff two trees, inspect and apply
the edit script.

This walks through the paper's running example (Sections 1-2):

    diff( Add(Sub(a, b), Mul(c, d)),
          Add(d, Mul(c, Sub(a, b))) )

truediff discovers that the ``Sub`` subtree and ``d`` merely moved and
produces the minimal, type-safe 4-edit truechange script.

Run:  python examples/quickstart.py
"""

from repro import Grammar, LIT_INT, LIT_STR, diff, is_well_typed, tnode_to_mtree
from repro.core import check_script
from repro.core.typecheck import CLOSED_STATE
from repro.core.edits import EditScript


def main() -> None:
    # 1. Declare the datatype (the Scala artifact's @diffable macro).
    g = Grammar()
    Exp = g.sort("Exp")
    Num = g.constructor("Num", Exp, lits=[("n", LIT_INT)])
    Var = g.constructor("Var", Exp, lits=[("name", LIT_STR)])
    Add = g.constructor("Add", Exp, kids=[("e1", Exp), ("e2", Exp)])
    Sub = g.constructor("Sub", Exp, kids=[("e1", Exp), ("e2", Exp)])
    Mul = g.constructor("Mul", Exp, kids=[("e1", Exp), ("e2", Exp)])

    # 2. Build the source and target trees of the running example.
    source = Add(Sub(Var("a"), Var("b")), Mul(Var("c"), Var("d")))
    target = Add(Var("d"), Mul(Var("c"), Sub(Var("a"), Var("b"))))
    print("source:", source.pretty())
    print("target:", target.pretty())

    # 3. Diff.  truediff returns the edit script and the patched tree
    #    (equal to the target, but reusing source nodes and URIs).
    script, patched = diff(source, target)
    print(f"\nedit script ({len(script)} edits):")
    print(script)

    # 4. The script is well-typed in the truechange linear type system:
    #    every intermediate tree is well-typed, detached subtrees are
    #    linear resources, and nothing leaks.
    assert is_well_typed(g.sigs, script)
    print("\nscript is well-typed \N{CHECK MARK}")

    # Watch the resources: detaches introduce roots and empty slots,
    # attaches consume them.
    state = CLOSED_STATE
    for edit in script.primitives():
        state = check_script(g.sigs, EditScript([edit]), state)
        print(f"  after {str(edit):<40} roots={len(state.roots)} slots={len(state.slots)}")

    # 5. Apply the script under the standard semantics (Figure 2): a
    #    mutable tree with a node index, each edit O(1).
    mtree = tnode_to_mtree(source)
    mtree.patch(script)
    assert mtree.structure_equals(tnode_to_mtree(target))
    print("\npatched tree:", mtree.pretty())

    # 6. Literal changes become Update edits; unchanged structure is
    #    never mentioned (conciseness).
    target2 = Add(Var("d"), Mul(Var("c"), Sub(Var("a"), Var("z"))))
    script2, _ = diff(patched, target2)
    print(f"\nliteral change produces {len(script2)} edit:")
    print(script2)


if __name__ == "__main__":
    main()
