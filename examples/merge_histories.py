#!/usr/bin/env python3
"""Three-way merging of structural changes.

Two developers branch off the same revision of a file and edit different
parts.  Their changes are truechange edit scripts; because the scripts
are linearly typed and address nodes by URI, disjoint changes provably
commute and can be merged by concatenation, while overlapping changes are
reported as conflicts instead of silently misapplied.

Run:  python examples/merge_histories.py
"""

from repro.core import diff, find_conflicts, merge_scripts, tnode_to_mtree
from repro.langs.minilang import parse_mini, pretty
from repro.core.patch import mtree_to_tnode

BASE = """
fn area(w, h) {
    return w * h;
}

fn perimeter(w, h) {
    return 2 * (w + h);
}
"""

# developer A renames a parameter in `area`
LEFT = """
fn area(width, h) {
    return width * h;
}

fn perimeter(w, h) {
    return 2 * (w + h);
}
"""

# developer B guards `perimeter` against negatives
RIGHT = """
fn area(w, h) {
    return w * h;
}

fn perimeter(w, h) {
    if w < 0 {
        return 0;
    }
    return 2 * (w + h);
}
"""

# developer C also edits `area` (conflicts with A)
CONFLICTING = """
fn area(w, h) {
    return h * w;
}

fn perimeter(w, h) {
    return 2 * (w + h);
}
"""


def main() -> None:
    base = parse_mini(BASE)
    sigs = base.sigs

    left_script, _ = diff(base, parse_mini(LEFT))
    right_script, _ = diff(base, parse_mini(RIGHT))
    print(f"developer A: {len(left_script)} edits")
    print(f"developer B: {len(right_script)} edits")

    result = merge_scripts(left_script, right_script)
    assert result.ok
    print(f"\nmerged cleanly into {len(result.script)} edits")

    mtree = tnode_to_mtree(base)
    mtree.patch(result.script)
    merged = mtree_to_tnode(mtree, sigs)
    print("\nmerged program:")
    print(pretty(merged))

    # now the conflicting pair
    conflict_script, _ = diff(base, parse_mini(CONFLICTING))
    conflicts = find_conflicts(left_script, conflict_script)
    print(f"\nmerging A with C reports {len(conflicts)} conflict(s):")
    for c in conflicts:
        print(f"   {c}")
    assert not merge_scripts(left_script, conflict_script).ok


if __name__ == "__main__":
    main()
