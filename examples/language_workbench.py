#!/usr/bin/env python3
"""A language workbench session: live type checking driven by truediff.

The full pipeline the paper's Section 6 describes, on a language built
entirely inside this repository: the mini imperative language
(:mod:`repro.langs.minilang`) with its lexer, parser, pretty-printer, and
an incrementally maintained type checker.

Every "keystroke" below re-parses the buffer; truediff computes a concise
edit script against the previous tree; the script updates the Datalog
fact base; and the type checker's error relations are refreshed without
re-analyzing the unchanged functions.

Run:  python examples/language_workbench.py
"""

from repro.langs.minilang import parse_mini
from repro.langs.minilang.analysis import make_mini_driver

BUFFER_STATES = [
    # the user starts typing main
    """
fn main() {
    let total = 0;
    return total + bonus;
}
""",
    # defines the missing helper value
    """
fn main() {
    let bonus = 5;
    let total = 0;
    return total + bonus;
}
""",
    # introduces a type error while refactoring
    """
fn main() {
    let bonus = "five";
    let total = 0;
    return total + bonus;
}
""",
    # fixes it and adds a second function
    """
fn main() {
    let bonus = 5;
    let total = 0;
    return total + bonus;
}

fn clamp(v, limit) {
    if v > limit {
        return limit;
    }
    return v;
}
""",
]


def show_diagnostics(driver) -> None:
    unbound = sorted(name for _, name in driver.engine.facts("unbound_name"))
    ill = len(driver.engine.facts("ill_typed"))
    conflicts = sorted(x for _, x in driver.engine.facts("bind_conflict"))
    if not unbound and not ill and not conflicts:
        print("   no diagnostics — program is well-typed")
        return
    for name in unbound:
        print(f"   error: name {name!r} is not bound")
    if ill:
        print(f"   error: {ill} ill-typed expression(s)")
    for name in conflicts:
        print(f"   warning: {name!r} bound at conflicting types")


def main() -> None:
    driver = make_mini_driver(parse_mini(BUFFER_STATES[0]))
    print("buffer v0:")
    show_diagnostics(driver)

    for i, buffer in enumerate(BUFFER_STATES[1:], start=1):
        report = driver.update(parse_mini(buffer), measure_scratch=True)
        print(
            f"\nbuffer v{i}: {report.edits} tree edits, "
            f"{report.fact_inserts}+/{report.fact_deletes}- facts, "
            f"{report.incremental_ms:.1f} ms incremental "
            f"(vs {report.scratch_ms:.1f} ms from scratch)"
        )
        show_diagnostics(driver)
        assert driver.check_consistency()

    print("\nincremental diagnostics matched from-scratch analysis throughout ✓")


if __name__ == "__main__":
    main()
