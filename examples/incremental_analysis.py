#!/usr/bin/env python3
"""Incremental program analysis driven by truediff (Section 6).

The paper's motivating use case: an IncA-style incremental analysis
framework where, after every code change, the file is re-parsed, diffed
with truediff, and the resulting edit script updates an incrementally
maintained Datalog database — no re-analysis of unchanged code.

This example maintains a def/use analysis over an evolving Python module
and reports, after each edit, which calls have no definition — along with
the cost of the incremental update vs re-analyzing from scratch.

Run:  python examples/incremental_analysis.py
"""

from repro.adapters import parse_python
from repro.incremental import (
    IncrementalDriver,
    install_descendants,
    install_python_defuse,
)

VERSIONS = [
    # v0: helper() is not defined yet
    '''
def main():
    data = load()
    return helper(data)

def load():
    return [1, 2, 3]
''',
    # v1: helper gets defined
    '''
def main():
    data = load()
    return helper(data)

def load():
    return [1, 2, 3]

def helper(items):
    return sum(items)
''',
    # v2: a new undefined call appears inside helper
    '''
def main():
    data = load()
    return helper(data)

def load():
    return [1, 2, 3]

def helper(items):
    return normalize(sum(items))
''',
    # v3: load is renamed; its call site follows
    '''
def main():
    data = load_items()
    return helper(data)

def load_items():
    return [1, 2, 3]

def helper(items):
    return normalize(sum(items))
''',
]


def main() -> None:
    driver = IncrementalDriver(
        parse_python(VERSIONS[0]),
        installers=[install_descendants, install_python_defuse],
    )

    def report_state(version: int) -> None:
        undefined = sorted(name for _, name in driver.engine.facts("undefined_call"))
        defined = sorted(n for (n,) in driver.engine.facts("defined_name"))
        print(f"  defined:   {', '.join(defined)}")
        print(f"  undefined calls: {', '.join(undefined) if undefined else '(none)'}")

    print("v0 (initial analysis):")
    report_state(0)

    for i, source in enumerate(VERSIONS[1:], start=1):
        rep = driver.update(parse_python(source), measure_scratch=True)
        print(
            f"\nv{i}: {rep.edits} edits -> {rep.fact_inserts}+/"
            f"{rep.fact_deletes}- facts, incremental {rep.incremental_ms:.2f} ms "
            f"(from scratch: {rep.scratch_ms:.2f} ms, {rep.speedup:.1f}x)"
        )
        report_state(i)
        assert driver.check_consistency(), "incremental == from-scratch"

    print("\nall incremental states matched from-scratch evaluation \N{CHECK MARK}")


if __name__ == "__main__":
    main()
